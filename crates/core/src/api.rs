//! One-call entry point: label results, pick an algorithm, explain.
//!
//! [`LabeledQuery`] is the borrowed, zero-copy way to pose one
//! Influential Predicates problem; [`explain`] runs it once. For owned,
//! re-runnable requests (sessions, services, streams) use the
//! [`crate::Scorpion`] builder and [`crate::ExplainRequest`] — this
//! module keeps the thin borrowed constructor for compatibility, and
//! both paths dispatch into the same [`crate::engine::Explainer`]
//! implementations.

use crate::config::{Algorithm, DtConfig, McConfig, NaiveConfig, ScorpionConfig};
use crate::engine::engine_for;
use crate::error::{Result, ScorpionError};
use crate::result::{Diagnostics, Explanation};
use crate::scorer::Scorer;
use scorpion_agg::Aggregate;
use scorpion_table::{domains_of, Grouping, Table};
use std::collections::HashSet;
use std::time::Instant;

/// A group-by aggregate query with user labels — the full input of the
/// Influential Predicates problem (§3.3): the query (table + grouping +
/// aggregate), the outlier set `O` with error vectors `V`, and the
/// hold-out set `H`.
pub struct LabeledQuery<'a> {
    /// The input relation `D`.
    pub table: &'a Table,
    /// The query's grouping (which doubles as provenance, §4.1).
    pub grouping: &'a Grouping,
    /// The aggregate operator.
    pub agg: &'a dyn Aggregate,
    /// The aggregated attribute (`A_agg`).
    pub agg_attr: usize,
    /// Outlier results: `(result index, error-vector component)`.
    pub outliers: Vec<(usize, f64)>,
    /// Hold-out result indices.
    pub holdouts: Vec<usize>,
}

impl<'a> LabeledQuery<'a> {
    /// Validates the labels against the grouping.
    pub fn validate(&self) -> Result<()> {
        if self.outliers.is_empty() {
            return Err(ScorpionError::NoOutliers);
        }
        let len = self.grouping.len();
        let mut seen = HashSet::new();
        for &(i, _) in &self.outliers {
            if i >= len {
                return Err(ScorpionError::BadLabel { index: i, len });
            }
            seen.insert(i);
        }
        for &i in &self.holdouts {
            if i >= len {
                return Err(ScorpionError::BadLabel { index: i, len });
            }
            if seen.contains(&i) {
                return Err(ScorpionError::OverlappingLabels { index: i });
            }
        }
        Ok(())
    }

    /// The explanation attributes `A_rest = A − A_gb − A_agg` (§3.1).
    pub fn default_explain_attrs(&self) -> Vec<usize> {
        (0..self.table.schema().len())
            .filter(|a| *a != self.agg_attr && !self.grouping.group_attrs().contains(a))
            .collect()
    }

    /// Builds a Scorer for these labels. Group rows and masks come from
    /// the grouping's shared (`Arc`-cached) handles, so repeated scorer
    /// builds over the same grouping — plan re-runs, session re-scores,
    /// streaming rebinds — copy no row ids.
    pub fn scorer(
        &self,
        params: crate::config::InfluenceParams,
        force_blackbox: bool,
    ) -> Result<Scorer<'a>> {
        self.validate()?;
        let handle = |i: usize, error: f64| {
            let (rows, mask) = self.grouping.shared_group(i, self.table.len());
            crate::scorer::GroupHandle { rows, mask, error }
        };
        let outliers = self.outliers.iter().map(|&(i, e)| handle(i, e)).collect();
        let holdouts = self.holdouts.iter().map(|&i| handle(i, 1.0)).collect();
        Scorer::from_handles(
            self.table,
            self.agg,
            self.agg_attr,
            outliers,
            holdouts,
            params,
            force_blackbox,
        )
    }

    /// Values of the aggregate attribute across all labeled groups,
    /// used for the §5.3 `check(D)` anti-monotonicity test.
    fn labeled_values(&self) -> Result<Vec<f64>> {
        let vals = self.table.num(self.agg_attr)?;
        let mut out = Vec::new();
        for &(i, _) in &self.outliers {
            out.extend(self.grouping.rows(i).iter().map(|&r| vals[r as usize]));
        }
        for &i in &self.holdouts {
            out.extend(self.grouping.rows(i).iter().map(|&r| vals[r as usize]));
        }
        Ok(out)
    }
}

/// Resolves `Algorithm::Auto` from the aggregate's §5 properties:
/// independent + anti-monotonic (per `check(D)` on the labeled data) → MC;
/// independent → DT; otherwise NAIVE.
pub fn resolve_algorithm(q: &LabeledQuery<'_>, algo: &Algorithm) -> Result<Algorithm> {
    match algo {
        Algorithm::Auto => {
            let independent = q.agg.properties().independent;
            let anti = q.agg.anti_monotonic_check(&q.labeled_values()?);
            Ok(if independent && anti {
                Algorithm::BottomUp(McConfig::default())
            } else if independent {
                Algorithm::DecisionTree(DtConfig::default())
            } else {
                Algorithm::Naive(NaiveConfig::default())
            })
        }
        other => Ok(other.clone()),
    }
}

/// Solves the Influential Predicates problem for a labeled query.
///
/// Returns the ranked predicates (most influential first) and run
/// diagnostics. Dispatches to the [`crate::engine::Explainer`]
/// implementing the (resolved) algorithm; nothing is cached across
/// calls — use [`crate::session::ScorpionSession`] for that.
pub fn explain(q: &LabeledQuery<'_>, cfg: &ScorpionConfig) -> Result<Explanation> {
    q.validate()?;
    let start = Instant::now();
    let mut scorer = q.scorer(cfg.params, cfg.force_blackbox)?;
    if let Some(approx) = &cfg.approx {
        let state = scorer.build_approx(*approx)?;
        scorer = scorer.with_approx_state(state);
    }
    let mut attrs = match &cfg.explain_attrs {
        Some(a) => a.clone(),
        None => q.default_explain_attrs(),
    };
    if attrs.is_empty() {
        return Err(ScorpionError::NoExplainAttributes);
    }
    if let Some(k) = cfg.max_explain_attrs {
        if k < attrs.len() {
            attrs = crate::features::select_attributes(&scorer, &attrs, k)?;
        }
    }
    let domains = domains_of(q.table)?;
    let algo = resolve_algorithm(q, &cfg.algorithm)?;
    let engine = engine_for(&algo)?;
    let run = engine.search(&scorer, &attrs, &domains)?;

    let mut phases = run.phases;
    scorpion_obs::merge_phases(&mut phases, scorer.timing_phases());
    let mut diagnostics = Diagnostics {
        runtime: start.elapsed(),
        scorer_calls: scorer.scorer_calls(),
        cache_hits: scorer.cache_hits(),
        mask_cache_hits: scorer.mask_cache_hits(),
        mask_cache_entries: scorer.mask_cache_entries(),
        candidates: run.candidates,
        partitions: run.partitions,
        budget_exhausted: run.budget_exhausted,
        phases,
        ..Diagnostics::default()
    };
    crate::engine::approx_diag(&mut diagnostics, &scorer);
    Ok(crate::engine::finish(engine.algorithm(), run.predicates, diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfluenceParams;
    use scorpion_agg::{Avg, Median, Sum};
    use scorpion_table::{group_by, Field, Schema, TableBuilder, Value};

    fn planted() -> (Table, Grouping) {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..200 {
            let x = (i as f64 * 7.3) % 100.0;
            let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
        }
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        (t, g)
    }

    fn planted_query<'a>(
        t: &'a Table,
        g: &'a Grouping,
        agg: &'a dyn Aggregate,
    ) -> LabeledQuery<'a> {
        LabeledQuery {
            table: t,
            grouping: g,
            agg,
            agg_attr: 2,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        }
    }

    #[test]
    fn auto_selects_mc_for_sum_on_nonnegative() {
        let (t, g) = planted();
        let q = planted_query(&t, &g, &Sum);
        let algo = resolve_algorithm(&q, &Algorithm::Auto).unwrap();
        assert!(matches!(algo, Algorithm::BottomUp(_)));
    }

    #[test]
    fn auto_selects_dt_for_avg() {
        let (t, g) = planted();
        let q = planted_query(&t, &g, &Avg);
        let algo = resolve_algorithm(&q, &Algorithm::Auto).unwrap();
        assert!(matches!(algo, Algorithm::DecisionTree(_)));
    }

    #[test]
    fn auto_selects_naive_for_median() {
        let (t, g) = planted();
        let q = planted_query(&t, &g, &Median);
        let algo = resolve_algorithm(&q, &Algorithm::Auto).unwrap();
        assert!(matches!(algo, Algorithm::Naive(_)));
    }

    #[test]
    fn sum_with_negatives_falls_back_to_dt() {
        let schema = Schema::new(vec![Field::disc("g"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec!["a".into(), Value::from(-1.0)]).unwrap();
        b.push_row(vec!["b".into(), Value::from(2.0)]).unwrap();
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        let q = LabeledQuery {
            table: &t,
            grouping: &g,
            agg: &Sum,
            agg_attr: 1,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        };
        let algo = resolve_algorithm(&q, &Algorithm::Auto).unwrap();
        assert!(matches!(algo, Algorithm::DecisionTree(_)));
    }

    #[test]
    fn end_to_end_explain_finds_planted_range() {
        let (t, g) = planted();
        let q = planted_query(&t, &g, &Avg);
        let cfg = ScorpionConfig {
            params: InfluenceParams { lambda: 0.5, c: 0.2 },
            ..ScorpionConfig::default()
        };
        let ex = explain(&q, &cfg).unwrap();
        assert_eq!(ex.diagnostics.algorithm, "dt");
        assert!(ex.diagnostics.scorer_calls > 0);
        assert!(!ex.diagnostics.phases.is_empty(), "borrowed path reports no phases");
        let clause = ex.best().predicate.clause(1).expect("x clause");
        assert!(clause.matches_num(40.0));
        assert!(!clause.matches_num(90.0));
    }

    #[test]
    fn label_validation() {
        let (t, g) = planted();
        let mut q = planted_query(&t, &g, &Avg);
        q.outliers = vec![(7, 1.0)];
        assert!(matches!(
            explain(&q, &ScorpionConfig::default()),
            Err(ScorpionError::BadLabel { index: 7, .. })
        ));
        q.outliers = vec![(0, 1.0)];
        q.holdouts = vec![0];
        assert!(matches!(
            explain(&q, &ScorpionConfig::default()),
            Err(ScorpionError::OverlappingLabels { index: 0 })
        ));
        q.holdouts = vec![];
        q.outliers = vec![];
        assert!(matches!(explain(&q, &ScorpionConfig::default()), Err(ScorpionError::NoOutliers)));
    }

    #[test]
    fn default_explain_attrs_exclude_roles() {
        let (t, g) = planted();
        let q = planted_query(&t, &g, &Avg);
        // Attr 0 = group-by, attr 2 = aggregate → only attr 1 remains.
        assert_eq!(q.default_explain_attrs(), vec![1]);
    }
}

//! A lazily maintained LRU map shard, shared by every bounded cache in
//! the workspace (the Scorer's [`crate::InfluenceCache`], the server's
//! plan cache).
//!
//! Map values carry a last-access tick; the recency queue holds each
//! resident key exactly once, stamped with the tick it was enqueued at.
//! The hot `get` path only stores a tick — no allocation, no queue
//! traffic. Eviction pops the queue: a stale entry (stamp ≠ map tick,
//! i.e. touched since enqueueing) is re-enqueued at its current tick
//! instead of evicted, so the scan lands on the least-recently-used
//! resident. Each resident has exactly one queue slot, so an eviction
//! scan terminates in at most `2·len` pops.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// One lock shard of an LRU-bounded map. Callers provide the locking
/// and the capacity policy; the shard provides recency and eviction.
pub struct LruShard<K, V> {
    map: HashMap<K, (V, u64)>,
    order: VecDeque<(K, u64)>,
    tick: u64,
}

impl<K, V> Default for LruShard<K, V> {
    fn default() -> Self {
        LruShard { map: HashMap::new(), order: VecDeque::new(), tick: 0 }
    }
}

impl<K: Hash + Eq + Clone, V> LruShard<K, V> {
    /// The value under `k`, marked most-recently-used.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(k).map(|(v, t)| {
            *t = tick;
            v
        })
    }

    /// Inserts `k` (or replaces its value), evicting least-recently-used
    /// entries to stay within `cap` residents. Returns the number
    /// evicted.
    pub fn insert(&mut self, k: &K, v: V, cap: usize) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(k) {
            *slot = (v, tick);
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= cap.max(1) {
            let Some((old, stamp)) = self.order.pop_front() else { break };
            match self.map.get(&old) {
                Some(&(_, t)) if t != stamp => self.order.push_back((old, t)),
                Some(_) => {
                    self.map.remove(&old);
                    evicted += 1;
                }
                None => {}
            }
        }
        self.map.insert(k.clone(), (v, tick));
        self.order.push_back((k.clone(), tick));
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (and the recency queue).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut s = LruShard::default();
        for i in 0..4 {
            s.insert(&i, i * 10, 4);
        }
        // Touch 0 and 2; inserting past cap must evict 1 (the LRU).
        s.get_mut(&0);
        s.get_mut(&2);
        let evicted = s.insert(&9, 90, 4);
        assert_eq!(evicted, 1);
        assert!(s.get_mut(&1).is_none(), "1 was least recently used");
        for k in [0, 2, 3, 9] {
            assert!(s.get_mut(&k).is_some(), "{k} must survive");
        }
    }

    #[test]
    fn replacing_a_key_never_evicts() {
        let mut s = LruShard::default();
        s.insert(&1, "a", 1);
        assert_eq!(s.insert(&1, "b", 1), 0);
        assert_eq!(s.get_mut(&1), Some(&mut "b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_count_matches_overflow() {
        let mut s = LruShard::default();
        let mut evicted = 0;
        for i in 0..100 {
            evicted += s.insert(&i, (), 8);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(evicted, 92);
    }
}

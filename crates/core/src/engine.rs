//! The two-phase `Explainer` engine abstraction.
//!
//! §8.3.3 observes that DT partitioning is `c`-agnostic: prepare once,
//! re-score cheaply as the user moves the `c` slider. This module
//! generalizes that split to every algorithm behind one trait pair:
//!
//! * [`Explainer::prepare`] runs the expensive, `c`-agnostic phase — DT
//!   tree growth and carving, MC initial-unit construction, NAIVE
//!   candidate enumeration — against an owned
//!   [`ExplainRequest`], and returns a [`PreparedPlan`].
//! * [`PreparedPlan::run`] is the cheap phase: re-score the prepared
//!   artifacts under any [`InfluenceParams`] and merge. Every plan
//!   carries a shared [`InfluenceCache`], so predicates scored in a
//!   previous run (at any `c`) are re-scored without matcher work —
//!   the warm path that previously existed for DT only now covers MC
//!   and NAIVE too.
//!
//! Engines also implement [`Explainer::search`], the borrowed one-shot
//! path [`crate::explain`] dispatches through (no owned request, no
//! caching) — the two paths produce identical results at equal
//! parameters.
//!
//! Plans can out-live one dataset snapshot: [`PreparedPlan::rebind`]
//! transfers the `c`-agnostic geometry onto a new, compatible request
//! (the streaming engine uses this to carry partitions across window
//! slides), dropping the influence cache whose entries the new data
//! invalidated.

use crate::approx::ApproxState;
use crate::config::{Algorithm, DtConfig, InfluenceParams, McConfig, NaiveConfig, SamplingConfig};
use crate::dt::DtPartitioner;
use crate::error::{Result, ScorpionError};
use crate::features::select_attributes;
use crate::mc::{initial_units, mc_search, mc_search_units};
use crate::merger::Merger;
use crate::naive::{naive_candidates, naive_search, naive_search_prepared, NaiveCandidates};
use crate::request::ExplainRequest;
use crate::result::{Diagnostics, Explanation, ScoredPredicate};
use crate::scorer::{resolve_threads, InfluenceCache, Scorer};
use parking_lot::Mutex;
use scorpion_obs::{merge_phases, span, PhaseTiming};
use scorpion_table::{domains_of, AttrDomain, ClauseMaskCache, OrdF64, Predicate};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Result of one engine search: the ranked predicates plus the counters
/// the caller folds into [`Diagnostics`].
pub struct EngineRun {
    /// Ranked predicates, best first (may be empty; callers substitute
    /// the all-predicate).
    pub predicates: Vec<ScoredPredicate>,
    /// Partitions / units generated before merging.
    pub partitions: usize,
    /// Candidate predicates generated.
    pub candidates: u64,
    /// True when an anytime search exhausted its budget.
    pub budget_exhausted: bool,
    /// Per-phase wall-clock attribution of the search (callers fold in
    /// scorer-side timings before publishing `Diagnostics.phases`).
    pub phases: Vec<PhaseTiming>,
}

/// A partitioning algorithm as a two-phase engine.
///
/// Implementations are stateless config holders; all run state lives in
/// the [`PreparedPlan`] they produce.
pub trait Explainer: Send + Sync {
    /// Diagnostic name (`"dt"`, `"mc"`, `"naive"`).
    fn algorithm(&self) -> &'static str;

    /// One-shot cold search against a borrowed scorer — the
    /// [`crate::explain`] path. No preparation artifacts survive the
    /// call.
    fn search(
        &self,
        scorer: &Scorer<'_>,
        attrs: &[usize],
        domains: &[AttrDomain],
    ) -> Result<EngineRun>;

    /// The expensive, `c`-agnostic phase: build everything about this
    /// request that does not depend on the influence parameters, and
    /// return a plan that re-scores cheaply.
    fn prepare(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>>;
}

/// The product of [`Explainer::prepare`]: owned, `Send + Sync`, and
/// cheap to re-run under any [`InfluenceParams`].
pub trait PreparedPlan: Send + Sync {
    /// Diagnostic name of the producing algorithm.
    fn algorithm(&self) -> &'static str;

    /// Re-scores the prepared artifacts at `params` and returns the
    /// ranked explanation. The first run also charges the preparation's
    /// scorer calls to its diagnostics, so a prepare+run pair reports
    /// the same cost shape as the one-shot path.
    fn run(&self, params: &InfluenceParams) -> Result<Explanation>;

    /// Like [`PreparedPlan::run`], but with a best-effort wall-clock
    /// budget. Anytime engines (NAIVE, MC) clamp their internal time
    /// budget to `budget` and return best-so-far results with
    /// [`Diagnostics::budget_exhausted`] set when it expires; engines
    /// without an anytime loop (DT) ignore it and run to completion, so
    /// callers enforcing a hard deadline must also check the clock after
    /// the call returns. `None` behaves exactly like [`PreparedPlan::run`].
    fn run_with_budget(
        &self,
        params: &InfluenceParams,
        budget: Option<std::time::Duration>,
    ) -> Result<Explanation> {
        let _ = budget;
        self.run(params)
    }

    /// Transfers the `c`-agnostic artifacts onto a new, compatible
    /// request — same schema and label semantics over fresher data (a
    /// slid window, an appended table). Influence caches are dropped
    /// (the data changed); candidate geometry and merge seeds survive
    /// and are re-scored exactly on the next [`PreparedPlan::run`].
    fn rebind(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>>;

    /// Predicates worth seeding a successor plan's merge with (the most
    /// recent merged output, for engines that merge).
    fn seeds(&self) -> Vec<Predicate> {
        Vec::new()
    }

    /// Adds externally supplied merge seeds (re-scored exactly before
    /// use). Engines without a merge phase ignore them.
    fn absorb_seeds(&self, _seeds: Vec<Predicate>) {}
}

/// Maps a (resolved) [`Algorithm`] to its engine. Errors on
/// [`Algorithm::Auto`] — resolve it first (e.g. via
/// [`ExplainRequest::resolve_algorithm`] or
/// [`crate::resolve_algorithm`]).
pub fn engine_for(algorithm: &Algorithm) -> Result<Box<dyn Explainer>> {
    Ok(match algorithm {
        Algorithm::Naive(cfg) => Box::new(NaiveEngine::new(cfg.clone())),
        Algorithm::DecisionTree(cfg) => Box::new(DtEngine::new(cfg.clone())),
        Algorithm::BottomUp(cfg) => Box::new(McEngine::new(cfg.clone())),
        Algorithm::Auto => {
            return Err(ScorpionError::BadConfig(
                "Algorithm::Auto must be resolved before engine construction",
            ))
        }
    })
}

/// Resolves the request's explanation attributes, applying §6.4 feature
/// selection when configured. Part of the prepare phase: the selection
/// is made once, at the request's own parameters.
fn prep_attrs(req: &ExplainRequest, scorer: &Scorer<'_>) -> Result<Vec<usize>> {
    let mut attrs = req.resolved_attrs()?;
    if let Some(k) = req.max_explain_attrs {
        if k < attrs.len() {
            attrs = select_attributes(scorer, &attrs, k)?;
        }
    }
    Ok(attrs)
}

/// Builds the approximate-search sampler state for a plan when the
/// request opted in (`None` otherwise). Runs in `prepare`/`rebind` —
/// the per-group sort is data-snapshot work, not per-run work.
fn prep_approx(req: &ExplainRequest, scorer: &Scorer<'_>) -> Result<Option<Arc<ApproxState>>> {
    req.approx().map(|cfg| scorer.build_approx(*cfg)).transpose()
}

/// Fills the approx-related [`Diagnostics`] fields from a run's scorer:
/// pruned count, the error bound (present whenever approximate mode was
/// requested, 0.0 when nothing was pruned), and any fallback reason.
pub(crate) fn approx_diag(diag: &mut Diagnostics, scorer: &Scorer<'_>) {
    if let Some(state) = scorer.approx_state() {
        diag.candidates_pruned = scorer.candidates_pruned();
        diag.approx_error_bound = Some(scorer.approx_error_bound());
        diag.approx_fallback = state.fallback();
    }
}

/// Cost of a plan's prepare phase, charged to the diagnostics of its
/// first run so a prepare+run pair reports the same cost shape as the
/// one-shot path.
#[derive(Clone, Default)]
struct PrepCost {
    calls: u64,
    runtime: std::time::Duration,
    /// Prepare-side phase timings, merged into the first run's phases.
    phases: Vec<PhaseTiming>,
}

/// Wraps ranked predicates into an [`Explanation`], substituting the
/// all-predicate when the search produced nothing. The single home of
/// that fallback policy — both the plan path and the borrowed
/// [`crate::explain`] path go through it.
pub(crate) fn finish(
    algorithm: &'static str,
    predicates: Vec<ScoredPredicate>,
    mut diagnostics: Diagnostics,
) -> Explanation {
    diagnostics.algorithm = algorithm;
    let predicates = if predicates.is_empty() {
        vec![ScoredPredicate::new(Predicate::all(), 0.0)]
    } else {
        predicates
    };
    Explanation { predicates, diagnostics }
}

// ---------------------------------------------------------------------
// DT
// ---------------------------------------------------------------------

/// The §6.1 decision-tree partitioner as an engine. `prepare` grows and
/// carves the trees (the per-tuple influences driving every split are
/// `c`-agnostic); `run` re-scores the partitions and merges, warm-
/// starting the merge from the cached output of the nearest `c' ≥ c`
/// (the Merger is monotone in `c`: decreasing `c` only merges further).
pub struct DtEngine {
    cfg: DtConfig,
}

impl DtEngine {
    /// An engine with the given DT configuration.
    pub fn new(cfg: DtConfig) -> Self {
        DtEngine { cfg }
    }
}

impl Explainer for DtEngine {
    fn algorithm(&self) -> &'static str {
        "dt"
    }

    fn search(
        &self,
        scorer: &Scorer<'_>,
        attrs: &[usize],
        domains: &[AttrDomain],
    ) -> Result<EngineRun> {
        let dt = DtPartitioner::new(scorer, attrs.to_vec(), domains.to_vec(), self.cfg.clone());
        let (merged, ddiag, _) = dt.run()?;
        Ok(EngineRun {
            predicates: merged,
            partitions: ddiag.partitions,
            candidates: ddiag.partitions as u64,
            budget_exhausted: false,
            phases: dt.take_phases(),
        })
    }

    fn prepare(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        let _span = span!("prepare");
        let start = Instant::now();
        req.validate()?;
        let cache = Arc::new(InfluenceCache::with_capacity_bound(req.influence_cache_entries()));
        let masks = Arc::new(ClauseMaskCache::new());
        let scorer = req.scorer()?.with_cache(cache.clone()).with_mask_cache(masks.clone());
        let attrs = prep_attrs(req, &scorer)?;
        let approx_state = prep_approx(req, &scorer)?;
        let domains = domains_of(&req.table)?;
        // Approximate mode implies §6.1.2 tree-growth sampling: when the
        // DT config left it unset, derive one from the approx knobs so
        // the grow phase samples at the same rate the scorer does.
        let mut cfg = self.cfg.clone();
        if cfg.sampling.is_none() {
            if let Some(a) = req.approx() {
                cfg.sampling = Some(SamplingConfig {
                    min_rows_to_sample: a.min_rows,
                    min_rate: a.sample_rate,
                    seed: a.seed,
                    ..SamplingConfig::default()
                });
            }
        }
        let dt = DtPartitioner::new(&scorer, attrs.clone(), domains.clone(), cfg.clone());
        let (partitions, _) = dt.partition()?;
        let runtime = start.elapsed();
        let mut phases = vec![PhaseTiming::once("prepare", runtime)];
        merge_phases(&mut phases, dt.take_phases());
        merge_phases(&mut phases, scorer.timing_phases());
        Ok(Box::new(DtPlan {
            req: req.clone(),
            cfg,
            attrs,
            domains,
            partitions,
            cache,
            masks,
            approx_state,
            prep_cost: PrepCost { calls: scorer.scorer_calls(), runtime, phases },
            state: Mutex::new(DtPlanState {
                merged_by_c: BTreeMap::new(),
                last_merged: Vec::new(),
                extra_seeds: Vec::new(),
                charge_prep: true,
            }),
        }))
    }
}

struct DtPlanState {
    /// Merged outputs keyed by `c` — each is a valid warm start for any
    /// lower `c` (§8.3.3).
    merged_by_c: BTreeMap<OrdF64, Vec<ScoredPredicate>>,
    /// Most recent merged predicates, exported as successor seeds.
    last_merged: Vec<Predicate>,
    /// Externally absorbed seeds, consumed by the next run.
    extra_seeds: Vec<Predicate>,
    /// Charge the prepare phase's scorer calls to the next run.
    charge_prep: bool,
}

struct DtPlan {
    req: ExplainRequest,
    cfg: DtConfig,
    attrs: Vec<usize>,
    domains: Vec<AttrDomain>,
    /// Unscored partition geometry (predicate + §6.3 stats); influence
    /// fields hold build-time scores and are re-scored per run.
    partitions: Vec<ScoredPredicate>,
    cache: Arc<InfluenceCache>,
    /// Clause masks for this plan's table snapshot, shared across runs.
    masks: Arc<ClauseMaskCache>,
    /// Sampler state for this plan's table snapshot, attached to every
    /// run scorer when the request opted into approximate search.
    approx_state: Option<Arc<ApproxState>>,
    prep_cost: PrepCost,
    state: Mutex<DtPlanState>,
}

/// Number of merged predicates exported as seeds to a successor plan.
const MAX_SEEDS: usize = 8;

impl PreparedPlan for DtPlan {
    fn algorithm(&self) -> &'static str {
        "dt"
    }

    fn run(&self, params: &InfluenceParams) -> Result<Explanation> {
        let _span = span!("run");
        let start = Instant::now();
        let mut scorer = self
            .req
            .scorer_at(*params)?
            .with_cache(self.cache.clone())
            .with_mask_cache(self.masks.clone());
        if let Some(state) = &self.approx_state {
            scorer = scorer.with_approx_state(state.clone());
        }

        // Re-score the cached partitions — batched across workers, and
        // free of mask work for every cache hit. Under approximate mode
        // the batch is interval-pruned first; the Merger re-scores its
        // top results exactly, so reported predicates stay exact.
        let score_start = Instant::now();
        let score_span = span!("score");
        let mut input = self.partitions.clone();
        let preds: Vec<Predicate> = input.iter().map(|sp| sp.predicate.clone()).collect();
        let threads = resolve_threads(self.cfg.score_threads);
        let batch = scorer.influence_batch_pruned(&preds, threads, self.cfg.merger.max_results);
        for (sp, inf) in input.iter_mut().zip(batch.scores) {
            sp.influence = inf?;
        }
        input.sort_by(|a, b| b.influence.total_cmp(&a.influence));
        let n_partitions = input.len();

        // Merge, warm-started from the nearest cached c' ≥ c plus any
        // absorbed seeds. Warm-start predicates carry stale influences
        // and stale stats; re-score exactly, stats dropped.
        let (warm, extra) = {
            let mut st = self.state.lock();
            let warm = st
                .merged_by_c
                .range(OrdF64(params.c)..)
                .next()
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            (warm, std::mem::take(&mut st.extra_seeds))
        };
        for mut sp in warm {
            sp.influence = scorer.influence(&sp.predicate)?;
            sp.stats = None;
            input.push(sp);
        }
        for pred in extra {
            let influence = scorer.influence(&pred)?;
            input.push(ScoredPredicate::new(pred, influence));
        }
        drop(score_span);
        let score_elapsed = score_start.elapsed();

        let merge_start = Instant::now();
        let merger = Merger::new(&scorer, &self.domains, self.cfg.merger.clone());
        let (merged, _) = merger.merge(input)?;
        let merge_elapsed = merge_start.elapsed();

        let prep = {
            let mut st = self.state.lock();
            st.merged_by_c.insert(OrdF64(params.c), merged.clone());
            st.last_merged = merged.iter().take(MAX_SEEDS).map(|sp| sp.predicate.clone()).collect();
            if st.charge_prep {
                st.charge_prep = false;
                self.prep_cost.clone()
            } else {
                PrepCost::default()
            }
        };
        let mut phases = prep.phases.clone();
        merge_phases(
            &mut phases,
            [
                PhaseTiming::once("run.score", score_elapsed),
                PhaseTiming::once("run.merge", merge_elapsed),
            ],
        );
        merge_phases(&mut phases, scorer.timing_phases());
        let mut diagnostics = Diagnostics {
            runtime: start.elapsed() + prep.runtime,
            scorer_calls: scorer.scorer_calls() + prep.calls,
            cache_hits: scorer.cache_hits(),
            cache_evictions: scorer.cache_evictions(),
            mask_cache_hits: scorer.mask_cache_hits(),
            mask_cache_entries: scorer.mask_cache_entries(),
            candidates: n_partitions as u64,
            partitions: n_partitions,
            phases,
            ..Diagnostics::default()
        };
        approx_diag(&mut diagnostics, &scorer);
        Ok(finish("dt", merged, diagnostics))
    }

    fn rebind(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        req.validate()?;
        // Geometry survives; §6.3 stats describe the old data and are
        // dropped (warm merges run exact), as are the influence cache
        // and the clause masks (both encode the old table's rows).
        let mut partitions = self.partitions.clone();
        for sp in &mut partitions {
            sp.stats = None;
        }
        // Sampler state encodes old row ids and values; rebuild it for
        // the new snapshot.
        let approx_state = prep_approx(req, &req.scorer()?)?;
        Ok(Box::new(DtPlan {
            req: req.clone(),
            cfg: self.cfg.clone(),
            attrs: self.attrs.clone(),
            domains: domains_of(&req.table)?,
            partitions,
            cache: Arc::new(InfluenceCache::with_capacity_bound(req.influence_cache_entries())),
            masks: Arc::new(ClauseMaskCache::new()),
            approx_state,
            prep_cost: PrepCost::default(),
            state: Mutex::new(DtPlanState {
                merged_by_c: BTreeMap::new(),
                last_merged: Vec::new(),
                extra_seeds: self.seeds(),
                charge_prep: false,
            }),
        }))
    }

    fn seeds(&self) -> Vec<Predicate> {
        self.state.lock().last_merged.clone()
    }

    fn absorb_seeds(&self, seeds: Vec<Predicate>) {
        self.state.lock().extra_seeds.extend(seeds);
    }
}

// ---------------------------------------------------------------------
// MC
// ---------------------------------------------------------------------

/// The §6.2 bottom-up partitioner as an engine. `prepare` builds the
/// level-1 units (bin and value geometry — `c`-agnostic); `run` executes
/// the pruned subspace search. The shared influence cache makes every
/// re-scored unit, intersection, and hull from earlier runs free.
pub struct McEngine {
    cfg: McConfig,
}

impl McEngine {
    /// An engine with the given MC configuration.
    pub fn new(cfg: McConfig) -> Self {
        McEngine { cfg }
    }
}

impl Explainer for McEngine {
    fn algorithm(&self) -> &'static str {
        "mc"
    }

    fn search(
        &self,
        scorer: &Scorer<'_>,
        attrs: &[usize],
        domains: &[AttrDomain],
    ) -> Result<EngineRun> {
        let (results, mdiag) = mc_search(scorer, attrs, domains, &self.cfg)?;
        Ok(EngineRun {
            predicates: results,
            partitions: mdiag.initial_units,
            candidates: mdiag.scored,
            budget_exhausted: mdiag.budget_exhausted,
            phases: mdiag.phases,
        })
    }

    fn prepare(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        self.prepare_with_attrs(req, None)
    }
}

impl McEngine {
    /// `prepare`, optionally reusing an already selected attribute set —
    /// the §6.4 ranking is a property of the labeling, not of one window
    /// snapshot, so rebinding plans pass their attrs through instead of
    /// re-ranking every slide.
    fn prepare_with_attrs(
        &self,
        req: &ExplainRequest,
        cached_attrs: Option<Vec<usize>>,
    ) -> Result<Box<dyn PreparedPlan>> {
        let _span = span!("prepare");
        let start = Instant::now();
        req.validate()?;
        let cache = Arc::new(InfluenceCache::with_capacity_bound(req.influence_cache_entries()));
        let masks = Arc::new(ClauseMaskCache::new());
        let scorer = req.scorer()?.with_cache(cache.clone()).with_mask_cache(masks.clone());
        let attrs = match cached_attrs {
            Some(attrs) => attrs,
            None => prep_attrs(req, &scorer)?,
        };
        let approx_state = prep_approx(req, &scorer)?;
        let domains = domains_of(&req.table)?;
        let unit_start = Instant::now();
        let units = initial_units(&scorer, &attrs, &domains, &self.cfg)?;
        let unit_elapsed = unit_start.elapsed();
        let runtime = start.elapsed();
        let mut phases = vec![
            PhaseTiming::once("prepare", runtime),
            PhaseTiming::once("mc.units", unit_elapsed),
        ];
        merge_phases(&mut phases, scorer.timing_phases());
        Ok(Box::new(McPlan {
            req: req.clone(),
            cfg: self.cfg.clone(),
            attrs,
            domains,
            units,
            cache,
            masks,
            approx_state,
            prep_cost: PrepCost { calls: scorer.scorer_calls(), runtime, phases },
            charge_prep: Mutex::new(true),
        }))
    }
}

struct McPlan {
    req: ExplainRequest,
    cfg: McConfig,
    attrs: Vec<usize>,
    domains: Vec<AttrDomain>,
    units: Vec<Predicate>,
    cache: Arc<InfluenceCache>,
    masks: Arc<ClauseMaskCache>,
    approx_state: Option<Arc<ApproxState>>,
    prep_cost: PrepCost,
    charge_prep: Mutex<bool>,
}

impl McPlan {
    /// The shared run body, parameterized by config so
    /// [`PreparedPlan::run_with_budget`] can clamp the anytime budget
    /// without mutating the plan.
    fn run_with_cfg(&self, params: &InfluenceParams, cfg: &McConfig) -> Result<Explanation> {
        let _span = span!("run");
        let start = Instant::now();
        let mut scorer = self
            .req
            .scorer_at(*params)?
            .with_cache(self.cache.clone())
            .with_mask_cache(self.masks.clone());
        if let Some(state) = &self.approx_state {
            scorer = scorer.with_approx_state(state.clone());
        }
        let score_start = Instant::now();
        let (results, mdiag) = {
            let _span = span!("score");
            mc_search_units(&scorer, &self.attrs, &self.domains, cfg, self.units.clone())?
        };
        let score_elapsed = score_start.elapsed();
        let prep = {
            let mut charge = self.charge_prep.lock();
            if *charge {
                *charge = false;
                self.prep_cost.clone()
            } else {
                PrepCost::default()
            }
        };
        let mut phases = prep.phases.clone();
        merge_phases(&mut phases, [PhaseTiming::once("run.score", score_elapsed)]);
        merge_phases(&mut phases, mdiag.phases.clone());
        merge_phases(&mut phases, scorer.timing_phases());
        let mut diagnostics = Diagnostics {
            runtime: start.elapsed() + prep.runtime,
            scorer_calls: scorer.scorer_calls() + prep.calls,
            cache_hits: scorer.cache_hits(),
            cache_evictions: scorer.cache_evictions(),
            mask_cache_hits: scorer.mask_cache_hits(),
            mask_cache_entries: scorer.mask_cache_entries(),
            candidates: mdiag.scored,
            partitions: mdiag.initial_units,
            budget_exhausted: mdiag.budget_exhausted,
            phases,
            ..Diagnostics::default()
        };
        approx_diag(&mut diagnostics, &scorer);
        Ok(finish("mc", results, diagnostics))
    }
}

impl PreparedPlan for McPlan {
    fn algorithm(&self) -> &'static str {
        "mc"
    }

    fn run(&self, params: &InfluenceParams) -> Result<Explanation> {
        self.run_with_cfg(params, &self.cfg)
    }

    fn run_with_budget(
        &self,
        params: &InfluenceParams,
        budget: Option<std::time::Duration>,
    ) -> Result<Explanation> {
        match budget {
            None => self.run(params),
            Some(b) => {
                let mut cfg = self.cfg.clone();
                cfg.time_budget = Some(cfg.time_budget.map_or(b, |own| own.min(b)));
                self.run_with_cfg(params, &cfg)
            }
        }
    }

    fn rebind(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        // Unit geometry is derived from domains and dictionaries, which
        // new data may have shifted; re-prepare (it is cheap for MC).
        // The §6.4 attribute selection survives: it ranks the *labeling*,
        // which a slide preserves, and re-ranking it is the expensive
        // part of MC's prepare.
        McEngine::new(self.cfg.clone()).prepare_with_attrs(req, Some(self.attrs.clone()))
    }
}

// ---------------------------------------------------------------------
// NAIVE
// ---------------------------------------------------------------------

/// The §4.2 exhaustive partitioner as an engine. `prepare` enumerates
/// the per-attribute clause candidates (bin and value geometry —
/// `c`-agnostic); `run` walks the anytime enumeration. With the shared
/// cache, a completed first run makes later runs at new parameters pure
/// arithmetic: every enumerated predicate re-scores without a matcher
/// pass.
pub struct NaiveEngine {
    cfg: NaiveConfig,
}

impl NaiveEngine {
    /// An engine with the given NAIVE configuration.
    pub fn new(cfg: NaiveConfig) -> Self {
        NaiveEngine { cfg }
    }
}

impl Explainer for NaiveEngine {
    fn algorithm(&self) -> &'static str {
        "naive"
    }

    fn search(
        &self,
        scorer: &Scorer<'_>,
        attrs: &[usize],
        domains: &[AttrDomain],
    ) -> Result<EngineRun> {
        let score_start = Instant::now();
        let out = naive_search(scorer, attrs, domains, &self.cfg)?;
        Ok(EngineRun {
            predicates: vec![out.best],
            partitions: 0,
            candidates: out.evaluated,
            budget_exhausted: !out.completed,
            phases: vec![PhaseTiming::once("run.score", score_start.elapsed())],
        })
    }

    fn prepare(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        self.prepare_with_attrs(req, None)
    }
}

impl NaiveEngine {
    /// `prepare`, optionally reusing an already selected attribute set
    /// (see [`McEngine::prepare_with_attrs`] — same §6.4 reasoning).
    fn prepare_with_attrs(
        &self,
        req: &ExplainRequest,
        cached_attrs: Option<Vec<usize>>,
    ) -> Result<Box<dyn PreparedPlan>> {
        let _span = span!("prepare");
        let start = Instant::now();
        req.validate()?;
        let cache = Arc::new(InfluenceCache::with_capacity_bound(req.influence_cache_entries()));
        let masks = Arc::new(ClauseMaskCache::new());
        let scorer = req.scorer()?.with_cache(cache.clone()).with_mask_cache(masks.clone());
        let attrs = match cached_attrs {
            Some(attrs) => attrs,
            None => prep_attrs(req, &scorer)?,
        };
        let approx_state = prep_approx(req, &scorer)?;
        let domains = domains_of(&req.table)?;
        let cand_start = Instant::now();
        let candidates = naive_candidates(&scorer, &attrs, &domains, &self.cfg)?;
        let cand_elapsed = cand_start.elapsed();
        let runtime = start.elapsed();
        let mut phases = vec![
            PhaseTiming::once("prepare", runtime),
            PhaseTiming::once("naive.candidates", cand_elapsed),
        ];
        merge_phases(&mut phases, scorer.timing_phases());
        Ok(Box::new(NaivePlan {
            req: req.clone(),
            cfg: self.cfg.clone(),
            attrs,
            candidates,
            cache,
            masks,
            approx_state,
            prep_cost: PrepCost { calls: scorer.scorer_calls(), runtime, phases },
            charge_prep: Mutex::new(true),
        }))
    }
}

struct NaivePlan {
    req: ExplainRequest,
    cfg: NaiveConfig,
    attrs: Vec<usize>,
    candidates: NaiveCandidates,
    cache: Arc<InfluenceCache>,
    masks: Arc<ClauseMaskCache>,
    approx_state: Option<Arc<ApproxState>>,
    prep_cost: PrepCost,
    charge_prep: Mutex<bool>,
}

impl NaivePlan {
    /// The shared run body, parameterized by config so
    /// [`PreparedPlan::run_with_budget`] can clamp the anytime budget
    /// without mutating the plan.
    fn run_with_cfg(&self, params: &InfluenceParams, cfg: &NaiveConfig) -> Result<Explanation> {
        let _span = span!("run");
        let start = Instant::now();
        let mut scorer = self
            .req
            .scorer_at(*params)?
            .with_cache(self.cache.clone())
            .with_mask_cache(self.masks.clone());
        if let Some(state) = &self.approx_state {
            // NAIVE's anytime argmax loop is not batch-pruned; the state is
            // attached so diagnostics report the knob consistently.
            scorer = scorer.with_approx_state(state.clone());
        }
        let score_start = Instant::now();
        let out = {
            let _span = span!("score");
            naive_search_prepared(&scorer, &self.candidates, cfg)?
        };
        let score_elapsed = score_start.elapsed();
        let prep = {
            let mut charge = self.charge_prep.lock();
            if *charge {
                *charge = false;
                self.prep_cost.clone()
            } else {
                PrepCost::default()
            }
        };
        let mut phases = prep.phases.clone();
        merge_phases(&mut phases, [PhaseTiming::once("run.score", score_elapsed)]);
        merge_phases(&mut phases, scorer.timing_phases());
        let mut diagnostics = Diagnostics {
            runtime: start.elapsed() + prep.runtime,
            scorer_calls: scorer.scorer_calls() + prep.calls,
            cache_hits: scorer.cache_hits(),
            cache_evictions: scorer.cache_evictions(),
            mask_cache_hits: scorer.mask_cache_hits(),
            mask_cache_entries: scorer.mask_cache_entries(),
            candidates: out.evaluated,
            budget_exhausted: !out.completed,
            phases,
            ..Diagnostics::default()
        };
        approx_diag(&mut diagnostics, &scorer);
        Ok(finish("naive", vec![out.best], diagnostics))
    }
}

impl PreparedPlan for NaivePlan {
    fn algorithm(&self) -> &'static str {
        "naive"
    }

    fn run(&self, params: &InfluenceParams) -> Result<Explanation> {
        self.run_with_cfg(params, &self.cfg)
    }

    fn run_with_budget(
        &self,
        params: &InfluenceParams,
        budget: Option<std::time::Duration>,
    ) -> Result<Explanation> {
        match budget {
            None => self.run(params),
            Some(b) => {
                let mut cfg = self.cfg.clone();
                cfg.time_budget = Some(cfg.time_budget.map_or(b, |own| own.min(b)));
                self.run_with_cfg(params, &cfg)
            }
        }
    }

    fn rebind(&self, req: &ExplainRequest) -> Result<Box<dyn PreparedPlan>> {
        NaiveEngine::new(self.cfg.clone()).prepare_with_attrs(req, Some(self.attrs.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DtConfig, McConfig, NaiveConfig};
    use crate::request::Scorpion;
    use scorpion_agg::{Avg, Sum};
    use scorpion_table::{Field, Schema, Table, TableBuilder, Value};

    fn planted() -> Table {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..200 {
            let x = (i as f64 * 7.3) % 100.0;
            let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
        }
        b.build()
    }

    fn request(algorithm: Algorithm, c: f64) -> ExplainRequest {
        let agg: std::sync::Arc<dyn scorpion_agg::Aggregate> = match &algorithm {
            Algorithm::BottomUp(_) => std::sync::Arc::new(Sum),
            _ => std::sync::Arc::new(Avg),
        };
        Scorpion::on(planted())
            .group_by(&[0], agg, 2)
            .unwrap()
            .outlier(0, 1.0)
            .holdout(1)
            .params(0.5, c)
            .algorithm(algorithm)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_for_rejects_auto() {
        assert!(matches!(engine_for(&Algorithm::Auto), Err(ScorpionError::BadConfig(_))));
        assert_eq!(
            engine_for(&Algorithm::DecisionTree(DtConfig::default())).unwrap().algorithm(),
            "dt"
        );
        assert_eq!(
            engine_for(&Algorithm::BottomUp(McConfig::default())).unwrap().algorithm(),
            "mc"
        );
        assert_eq!(
            engine_for(&Algorithm::Naive(NaiveConfig::default())).unwrap().algorithm(),
            "naive"
        );
    }

    #[test]
    fn dt_plan_reruns_with_cache_hits() {
        let dt = DtConfig { sampling: None, ..DtConfig::default() };
        let req = request(Algorithm::DecisionTree(dt), 0.5);
        let plan = req.prepare().unwrap();
        let first = plan.run(&InfluenceParams { lambda: 0.5, c: 0.5 }).unwrap();
        let second = plan.run(&InfluenceParams { lambda: 0.5, c: 0.2 }).unwrap();
        assert_eq!(first.diagnostics.algorithm, "dt");
        assert!(second.diagnostics.cache_hits > 0, "{:?}", second.diagnostics);
        assert!(
            second.diagnostics.scorer_calls < first.diagnostics.scorer_calls,
            "warm {} vs cold {}",
            second.diagnostics.scorer_calls,
            first.diagnostics.scorer_calls
        );
    }

    #[test]
    fn dt_plan_rebinds_onto_fresh_data() {
        let dt = DtConfig { sampling: None, ..DtConfig::default() };
        let req = request(Algorithm::DecisionTree(dt), 0.3);
        let plan = req.prepare().unwrap();
        let first = plan.run(&req.params()).unwrap();
        // Rebind onto a clone of the same request (stands in for a slid
        // window with identical outlier chunks).
        let rebound = plan.rebind(&req).unwrap();
        let again = rebound.run(&req.params()).unwrap();
        assert_eq!(first.best().predicate, again.best().predicate);
        assert!((first.best().influence - again.best().influence).abs() < 1e-9);
    }

    #[test]
    fn absorbed_seeds_only_help() {
        let dt = DtConfig { sampling: None, ..DtConfig::default() };
        let req = request(Algorithm::DecisionTree(dt), 0.2);
        let baseline = req.prepare().unwrap().run(&req.params()).unwrap();
        let seeded = req.prepare().unwrap();
        seeded.absorb_seeds(vec![baseline.best().predicate.clone()]);
        let run = seeded.run(&req.params()).unwrap();
        assert!(run.best().influence >= baseline.best().influence - 1e-9);
    }

    #[test]
    fn plan_runs_attribute_phases() {
        let algorithms = [
            Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() }),
            Algorithm::BottomUp(McConfig::default()),
            Algorithm::Naive(NaiveConfig::default()),
        ];
        for algorithm in algorithms {
            let req = request(algorithm, 0.5);
            let plan = req.prepare().unwrap();
            let first = plan.run(&req.params()).unwrap();
            let names: Vec<&str> = first.diagnostics.phases.iter().map(|p| p.name).collect();
            assert!(
                names.contains(&"prepare"),
                "{}: first run missing prepare phase in {names:?}",
                first.diagnostics.algorithm
            );
            assert!(
                first.diagnostics.phases.iter().all(|p| p.count > 0),
                "{names:?} has zero-count phases"
            );
            // The prepare cost is charged exactly once.
            let second = plan.run(&req.params()).unwrap();
            assert!(
                second.diagnostics.phases.iter().all(|p| p.name != "prepare"),
                "{}: prepare charged twice",
                second.diagnostics.algorithm
            );
            assert!(
                !second.diagnostics.phases.is_empty(),
                "{}: warm run has no phases",
                second.diagnostics.algorithm
            );
        }
    }

    #[test]
    fn run_with_budget_clamps_anytime_engines() {
        for algorithm in
            [Algorithm::BottomUp(McConfig::default()), Algorithm::Naive(NaiveConfig::default())]
        {
            let req = request(algorithm, 0.5);
            let plan = req.prepare().unwrap();
            let out = plan.run_with_budget(&req.params(), Some(std::time::Duration::ZERO)).unwrap();
            assert!(out.diagnostics.budget_exhausted, "{}", out.diagnostics.algorithm);
            assert!(!out.predicates.is_empty());
            // A generous budget does not trip the anytime exit.
            let full = plan
                .run_with_budget(&req.params(), Some(std::time::Duration::from_secs(3600)))
                .unwrap();
            assert!(!full.diagnostics.budget_exhausted, "{}", full.diagnostics.algorithm);
        }
        // DT has no anytime loop: the budget is ignored, not an error.
        let dt = DtConfig { sampling: None, ..DtConfig::default() };
        let req = request(Algorithm::DecisionTree(dt), 0.5);
        let plan = req.prepare().unwrap();
        let out = plan.run_with_budget(&req.params(), Some(std::time::Duration::ZERO)).unwrap();
        assert!(!out.diagnostics.budget_exhausted);
    }

    #[test]
    fn mc_and_naive_plans_expose_no_seeds() {
        let req = request(Algorithm::BottomUp(McConfig::default()), 0.5);
        let plan = req.prepare().unwrap();
        let _ = plan.run(&req.params()).unwrap();
        assert!(plan.seeds().is_empty());
        plan.absorb_seeds(vec![Predicate::all()]); // no-op, must not panic
    }
}

//! Dogfooding bridge: flight-recorder events as an explainable relation.
//!
//! `scorpion-obs` owns the bounded ring of [`TelemetryEvent`]s but is
//! deliberately dependency-free, so it cannot see `scorpion-table`.
//! This module closes the loop: it maps a run's [`Diagnostics`] into an
//! event ([`apply_diagnostics`]), materializes a batch of events as a
//! [`Table`] whose categorical columns are the request dimensions and
//! whose numeric columns are the costs ([`events_to_table`], surfaced as
//! [`TelemetryTable::to_table`] on the global recorder), and round-trips
//! that table through CSV ([`table_csv`], [`telemetry_table_from_csv`])
//! so `scorpion audit` can explain an offline dump exactly the way
//! `GET /debug/slow` explains the live ring.

use crate::error::Result;
use crate::result::Diagnostics;
use scorpion_obs::{CacheHit, Telemetry, TelemetryEvent};
use scorpion_table::csv::parse_csv_with_schema;
use scorpion_table::{Field, Schema, Table, TableBuilder, Value};
use std::collections::BTreeSet;

/// The per-event key column: `t<trace_id>`, unique per row. Never a
/// predicate dimension — it identifies rows, it does not explain them.
pub const REQ_COLUMN: &str = "req";

/// The arrival-order slice column: `s<n>`, where `n` is the event's
/// batch position divided by [`SLICE_WIDTH`]. The self-explain pipeline
/// groups by this column — `SELECT avg(latency_ms) … GROUP BY slice` —
/// so each aggregate result covers several adjacent requests, and a
/// slow slice contains both its offending and its normal tuples (the
/// within-group contrast the DT partitioner splits on, exactly the
/// paper's outlier-group shape).
pub const SLICE_COLUMN: &str = "slice";

/// Events per [`SLICE_COLUMN`] slice.
pub const SLICE_WIDTH: usize = 8;

/// The numeric measure the self-explain pipeline aggregates.
pub const LATENCY_COLUMN: &str = "latency_ms";

/// Prefix of the dynamic per-phase columns (`phase.<name>_us`).
pub const PHASE_COLUMN_PREFIX: &str = "phase.";

/// Fixed categorical dimension columns, in table order.
const DIM_COLUMNS: [&str; 8] = [
    "endpoint",
    "table",
    "algorithm",
    "aggregate",
    "status",
    "plan_cache",
    "influence_cache",
    "mask_cache",
];

/// Fixed numeric columns (besides the per-phase tail), in table order.
const NUM_COLUMNS: [&str; 6] =
    ["generation", "queue_wait_us", "rows_scanned", "resident_bytes", "predicates", LATENCY_COLUMN];

/// True when a telemetry column of this name holds numbers — the rule
/// [`telemetry_table_from_csv`] uses to rebuild the schema from a
/// header row (everything else, `status` included, stays categorical).
pub fn is_numeric_column(name: &str) -> bool {
    NUM_COLUMNS.contains(&name) || name.starts_with(PHASE_COLUMN_PREFIX)
}

/// Copies a run's engine-side facts into a flight-recorder event: the
/// resolved algorithm, influence/mask-cache observations, per-phase
/// microseconds, window residency, and (if the event has none yet) the
/// trace id. Surface-side fields — endpoint, table, status, queue wait,
/// total latency — stay whatever the caller put there.
pub fn apply_diagnostics(mut event: TelemetryEvent, d: &Diagnostics) -> TelemetryEvent {
    event.algorithm = d.algorithm.to_owned();
    event.influence_cache = CacheHit::from_flag(d.cache_hits > 0);
    event.mask_cache = CacheHit::from_flag(d.mask_cache_hits > 0);
    event.resident_bytes = d.resident_bytes;
    event.phases_us = d.phases.iter().map(|p| (p.name, p.nanos / 1_000)).collect();
    if event.trace_id == 0 {
        event.trace_id = d.trace_id;
    }
    event
}

/// Materializes events as a relation: one row per event, categorical
/// dimensions first (`req`, `slice`, endpoint, table, algorithm,
/// aggregate, status, cache flags), then numeric measures (generation, queue wait,
/// rows scanned, resident bytes, predicate count, `latency_ms`), then
/// one `phase.<name>_us` column per phase name appearing anywhere in
/// the batch (0 where a run lacks the phase).
pub fn events_to_table(events: &[TelemetryEvent]) -> Result<Table> {
    let phase_names: BTreeSet<&'static str> =
        events.iter().flat_map(|e| e.phases_us.iter().map(|&(n, _)| n)).collect();
    let mut fields = vec![Field::disc(REQ_COLUMN), Field::disc(SLICE_COLUMN)];
    fields.extend(DIM_COLUMNS.iter().map(|&n| Field::disc(n)));
    fields.extend(NUM_COLUMNS.iter().map(|&n| Field::cont(n)));
    fields.extend(phase_names.iter().map(|n| Field::cont(format!("{PHASE_COLUMN_PREFIX}{n}_us"))));
    let mut b = TableBuilder::new(Schema::new(fields)?);
    b.reserve(events.len());
    for (pos, e) in events.iter().enumerate() {
        let mut row: Vec<Value> = Vec::with_capacity(16 + phase_names.len());
        row.push(format!("t{}", e.trace_id).into());
        row.push(format!("s{:04}", pos / SLICE_WIDTH).into());
        row.push(e.endpoint.as_str().into());
        row.push(e.table.as_str().into());
        row.push(e.algorithm.as_str().into());
        row.push(e.aggregate.as_str().into());
        row.push(e.status.to_string().into());
        row.push(e.plan_cache.as_str().into());
        row.push(e.influence_cache.as_str().into());
        row.push(e.mask_cache.as_str().into());
        row.push((e.generation as f64).into());
        row.push((e.queue_wait_us as f64).into());
        row.push((e.rows_scanned as f64).into());
        row.push((e.resident_bytes as f64).into());
        row.push((e.predicates as f64).into());
        row.push((e.total_us as f64 / 1_000.0).into());
        for name in &phase_names {
            let us = e.phases_us.iter().find(|&&(n, _)| n == *name).map_or(0, |&(_, us)| us);
            row.push((us as f64).into());
        }
        b.push_row(row)?;
    }
    Ok(b.build())
}

/// The flight recorder as a relation the engine can explain.
pub trait TelemetryTable {
    /// Materializes the resident events (oldest first) via
    /// [`events_to_table`]. Row count equals the number of resident
    /// events: `min(recorded, capacity)` once writers quiesce.
    fn to_table(&self) -> Result<Table>;
}

impl TelemetryTable for Telemetry {
    fn to_table(&self) -> Result<Table> {
        events_to_table(&self.snapshot())
    }
}

/// Renders any table as CSV (header row, `""`-escaped quoting) —
/// the `GET /debug/telemetry?format=csv` body and the format
/// `scorpion audit --telemetry-csv` reads back.
pub fn table_csv(table: &Table) -> Result<String> {
    fn cell(out: &mut String, s: &str) {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            out.push('"');
            out.push_str(&s.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(s);
        }
    }
    let schema = table.schema();
    let mut out = String::new();
    for (i, f) in schema.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        cell(&mut out, f.name());
    }
    out.push('\n');
    for row in 0..table.len() {
        for attr in 0..schema.len() {
            if attr > 0 {
                out.push(',');
            }
            match table.value(row, attr)? {
                Value::Num(v) => out.push_str(&format!("{v}")),
                Value::Str(s) => cell(&mut out, &s),
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parses a telemetry CSV dump back into the [`events_to_table`] shape,
/// deriving each column's type from its name via [`is_numeric_column`]
/// (type inference alone would misread `status` — `"200"` — and
/// all-numeric trace keys as continuous).
pub fn telemetry_table_from_csv(text: &str) -> Result<Table> {
    let header = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or(scorpion_table::TableError::Empty("telemetry CSV"))?;
    let fields: Vec<Field> = header
        .split(',')
        .map(|raw| {
            let name = raw.trim();
            if is_numeric_column(name) {
                Field::cont(name)
            } else {
                Field::disc(name)
            }
        })
        .collect();
    Ok(parse_csv_with_schema(text, Schema::new(fields)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_obs::{telemetry, PhaseTiming};
    use scorpion_table::AttrType;
    use std::sync::Mutex;

    fn event(id: u64, algo: &str, ms: u64) -> TelemetryEvent {
        let mut e = TelemetryEvent::blank(id, "explain");
        e.table = "sensors".into();
        e.algorithm = algo.into();
        e.aggregate = "avg".into();
        e.status = 200;
        e.total_us = ms * 1_000;
        e.phases_us = vec![("run.score", ms * 900), ("run.merge", ms * 100)];
        e
    }

    #[test]
    fn events_round_trip_through_table_and_csv() {
        let events = vec![event(1, "dt", 2), event(2, "naive", 80)];
        let t = events_to_table(&events).unwrap();
        assert_eq!(t.len(), 2);
        // Dimensions are categorical — `status` included.
        assert_eq!(t.schema().field(t.attr("status").unwrap()).unwrap().ty(), AttrType::Discrete);
        assert_eq!(t.value(1, t.attr("req").unwrap()).unwrap().as_str(), Some("t2"));
        assert_eq!(t.value(1, t.attr("latency_ms").unwrap()).unwrap().as_num(), Some(80.0));
        assert_eq!(
            t.value(0, t.attr("phase.run.score_us").unwrap()).unwrap().as_num(),
            Some(1_800.0)
        );

        let csv = table_csv(&t).unwrap();
        let back = telemetry_table_from_csv(&csv).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.schema().len(), t.schema().len());
        for attr in 0..t.schema().len() {
            assert_eq!(
                back.schema().field(attr).unwrap().ty(),
                t.schema().field(attr).unwrap().ty(),
                "column {attr} type survives the round trip"
            );
            for row in 0..t.len() {
                assert_eq!(back.value(row, attr).unwrap(), t.value(row, attr).unwrap());
            }
        }
    }

    #[test]
    fn apply_diagnostics_copies_engine_facts() {
        let d = Diagnostics {
            algorithm: "mc",
            trace_id: 7,
            cache_hits: 3,
            mask_cache_hits: 0,
            resident_bytes: 1024,
            phases: vec![PhaseTiming { name: "mc.units", nanos: 5_000, count: 1 }],
            ..Default::default()
        };
        let e = apply_diagnostics(TelemetryEvent::blank(0, "cli.explain"), &d);
        assert_eq!(e.trace_id, 7);
        assert_eq!(e.algorithm, "mc");
        assert_eq!(e.influence_cache, CacheHit::Hit);
        assert_eq!(e.mask_cache, CacheHit::Miss);
        assert_eq!(e.resident_bytes, 1024);
        assert_eq!(e.phases_us, vec![("mc.units", 5)]);
        // An event that already has an id keeps it.
        let mut pre = TelemetryEvent::blank(9, "explain");
        pre = apply_diagnostics(pre, &d);
        assert_eq!(pre.trace_id, 9);
    }

    // The ring is process-global; serialize tests that touch it.
    static RING_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn to_table_row_count_tracks_resident_events_post_wrap() {
        let _g = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        telemetry().enable_with_capacity(8);
        telemetry().clear();
        let cap = telemetry().capacity() as u64;
        // Fewer events than capacity: one row per recorded event.
        for i in 0..cap - 2 {
            telemetry().record(event(i + 1, "dt", 1));
        }
        assert_eq!(telemetry().to_table().unwrap().len() as u64, cap - 2);
        // Wrap the ring: row count pins to the bound.
        for i in 0..cap * 3 {
            telemetry().record(event(100 + i, "dt", 1));
        }
        assert_eq!(telemetry().recorded(), cap - 2 + cap * 3);
        assert_eq!(telemetry().to_table().unwrap().len() as u64, cap);
        telemetry().disable();
        telemetry().clear();
    }
}

//! The Scorer (§4.1): evaluates the influence of candidate predicates.
//!
//! The Scorer is the shared cost center of every partitioning algorithm.
//! For black-box aggregates it re-runs the aggregate over the tuples that
//! survive the predicate; for incrementally removable aggregates (§5.1) it
//! caches each input group's full state once and evaluates `Δ` by reading
//! only the *deleted* tuples:
//!
//! `Δ(p) = recover(m_D) − recover(remove(m_D, state(p(g))))`.
//!
//! Predicate evaluation is columnar: each candidate compiles to a
//! [`scorpion_table::RowMask`] (per-clause bitmap kernels, `AND`-combined,
//! memoized per distinct clause in a shared [`ClauseMaskCache`]), and
//! `(n, Δ)` per group falls out of a word-wise zip of the predicate mask
//! against the group's base mask — `n` from popcount, `Δ` from a masked
//! [`AggState`] fold that skips whole all-zero words. The row-at-a-time
//! [`scorpion_table::PredicateMatcher`] survives only as the reference
//! oracle ([`Scorer::influence_rowwise`]), parity-tested against the mask
//! path.

use crate::approx::{ApproxState, GroupSample, InfluenceInterval};
use crate::config::{ApproxConfig, InfluenceParams};
use crate::error::{Result, ScorpionError};
use crate::lru::LruShard;
use parking_lot::Mutex;
use scorpion_agg::{AggState, Aggregate, IncrementalAggregate};
use scorpion_obs::PhaseTiming;
use scorpion_table::{
    intersect_count_words, ClauseMaskCache, Predicate, PredicateMask, PredicateMatcher, RowMask,
    Table,
};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// `n^c` for the interval pass. `c = 0.5` (the paper's default) hits
/// `sqrt` instead of the generic `powf`; any ulp drift against the exact
/// path's arithmetic is covered by the interval's envelope pad.
#[inline]
fn pow_c(n: f64, c: f64) -> f64 {
    if c == 0.5 {
        n.sqrt()
    } else {
        n.powf(c)
    }
}

/// Batch-lifetime scratch for the interval (bound) pass: per-candidate
/// buffers reused across the batch plus the per-(group, leading-clause)
/// AND memo. Everything here is transient — it never outlives one
/// [`Scorer::influence_batch_pruned`] call.
#[derive(Default)]
struct BoundScratch {
    /// The current candidate's full-table clause masks.
    clause_masks: Vec<Arc<RowMask>>,
    /// The current candidate's compressed (sample-universe) clause bitmaps.
    comps: Vec<Arc<Vec<u64>>>,
    /// Per-slot matched sampled-row counts.
    ks: Vec<u32>,
    /// Per-slot matched sampled value-sums.
    ss: Vec<f64>,
    /// `group-mask ∧ leading-clause-mask` over the group's word span,
    /// keyed by both operands' addresses (stable for the batch).
    lead: HashMap<(usize, usize), Vec<u64>>,
}

/// Resolves a configured worker-thread count: `0` means "use the host's
/// available parallelism".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// One labeled result: the rows of its input group and, for outliers, the
/// user's error-vector component `v_o` (+1 = "too high", −1 = "too low";
/// any magnitude is accepted and treated as a weight).
///
/// Rows are a *set*: the Scorer normalizes them to ascending order and
/// drops duplicates (groupings already produce sorted, unique row ids).
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Row ids of the input group `g_o` (provenance of the result).
    pub rows: Vec<u32>,
    /// Error-vector component. Ignored for hold-out groups.
    pub error: f64,
}

/// A labeled group as shared handles — the zero-copy form
/// [`crate::LabeledQuery::scorer`] feeds from a grouping's cached
/// `Arc` slices and masks.
pub(crate) struct GroupHandle {
    /// Row ids, ascending and unique.
    pub rows: Arc<[u32]>,
    /// The same rows as a bitmap over the table's row domain.
    pub mask: Arc<RowMask>,
    /// Error-vector component (`1.0` for hold-outs).
    pub error: f64,
}

/// A labeled group prepared for scoring.
pub(crate) struct GroupCtx {
    /// Row ids of the input group, ascending and unique.
    pub rows: Arc<[u32]>,
    /// The group's rows as a bitmap over the table's row domain.
    pub mask: Arc<RowMask>,
    /// The nonzero word span of `mask` — the only words the masked
    /// accumulation loops visit.
    span: Range<usize>,
    /// Aggregate-attribute values aligned with `rows`.
    pub values: Vec<f64>,
    /// Error-vector component (`1.0` for hold-outs).
    pub error: f64,
    /// `agg(g)` over the full group.
    pub full_value: f64,
    /// `state(g)` when the aggregate is incrementally removable.
    pub full_state: Option<AggState>,
    /// Lazily computed per-tuple deltas `Δ(t) = agg(g) − agg(g − {t})`,
    /// aligned with `rows`.
    tuple_deltas: OnceLock<Vec<f64>>,
}

/// One predicate's cached, parameter-agnostic evaluation: per labeled
/// group, the matched-tuple count `n` and the aggregate delta `Δ`.
///
/// §8.3.3 observes that DT partitioning is `c`-agnostic; the same holds
/// one level deeper for *any* predicate's influence: `Δ` and `n` per
/// group do not depend on `c` or `λ` — only the final arithmetic
/// `λ·avg_o(v·Δ/n^c) − (1−λ)·max_h(|Δ|/n^c)` does. Caching `(n, Δ)`
/// therefore makes re-scoring at a new `c` free of matcher work for
/// every algorithm, not just DT.
#[derive(Debug, Clone, Default)]
struct CachedEval {
    /// `(n, Δ)` per outlier group (Scorer order), then per hold-out
    /// group. `None` until a full influence evaluation happened.
    /// `Arc`-wrapped so a cache hit is a pointer bump, not a copy of
    /// the per-group slices.
    groups: Option<Arc<GroupPairs>>,
    /// Cached result of [`Scorer::max_tuple_influence`].
    max_tuple: Option<f64>,
}

/// `(n, Δ)` pairs for the outlier groups and the hold-out groups.
type GroupPairs = (Box<[(f64, f64)]>, Box<[(f64, f64)]>);

/// One lock shard of an [`InfluenceCache`]: a [`LruShard`] of cached
/// evaluations keyed by predicate.
type CacheShard = LruShard<Predicate, CachedEval>;

/// A shareable cross-run influence cache keyed by predicate.
///
/// Attach one cache to every [`Scorer`] derived from the same labeled
/// query (same table, labels, and aggregate — the cached `(n, Δ)` pairs
/// are only meaningful for identical inputs) via [`Scorer::with_cache`];
/// re-scoring a known predicate under new [`InfluenceParams`] then skips
/// the matcher entirely and reproduces the direct computation
/// bit-for-bit.
///
/// The cache is bounded: past its capacity, inserting a new predicate
/// evicts the least-recently-used one (NAIVE enumerations can visit
/// millions of predicates; eviction bounds memory while keeping the hot
/// set warm). Evictions are counted and surface per run in
/// [`crate::Diagnostics::cache_evictions`].
pub struct InfluenceCache {
    /// Sharded by predicate hash so concurrent scoring workers
    /// ([`Scorer::influence_batch`]) do not serialize on one lock.
    shards: Vec<Mutex<CacheShard>>,
    /// Total capacity across shards (0 = the default cap).
    cap: usize,
    /// Cumulative LRU evictions.
    evictions: AtomicU64,
}

/// Default bound on cached predicates per [`InfluenceCache`].
const DEFAULT_CACHE_CAP: usize = 1 << 20;

/// Lock shards per cache (power of two).
const CACHE_SHARDS: usize = 16;

impl Default for InfluenceCache {
    fn default() -> Self {
        InfluenceCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(CacheShard::default())).collect(),
            cap: 0,
            evictions: AtomicU64::new(0),
        }
    }
}

impl InfluenceCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        InfluenceCache::default()
    }

    /// An empty cache holding at most `cap` predicates, evicting the
    /// least recently used past that (`0` = the default bound). The
    /// bound is enforced per lock shard, so the effective capacity is
    /// `cap` rounded up to a multiple of the shard count — read it back
    /// with [`InfluenceCache::capacity`].
    pub fn with_capacity_bound(cap: usize) -> Self {
        InfluenceCache { cap, ..InfluenceCache::default() }
    }

    /// Number of cached predicates.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Drops every cached evaluation (the eviction counter survives —
    /// clearing is not evicting).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Total capacity in predicates: the configured bound (or the
    /// default when constructed with `0`), rounded up to shard
    /// granularity — this is the bound actually enforced.
    pub fn capacity(&self) -> usize {
        self.shard_cap() * CACHE_SHARDS
    }

    /// Cumulative number of LRU evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn effective_cap(&self) -> usize {
        if self.cap == 0 {
            DEFAULT_CACHE_CAP
        } else {
            self.cap
        }
    }

    fn shard(&self, p: &Predicate) -> &Mutex<CacheShard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        p.hash(&mut h);
        &self.shards[(h.finish() as usize) & (CACHE_SHARDS - 1)]
    }

    fn shard_cap(&self) -> usize {
        self.effective_cap().div_ceil(CACHE_SHARDS)
    }

    fn count_evictions(&self, n: u64) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn get(&self, p: &Predicate) -> Option<CachedEval> {
        self.shard(p).lock().get_mut(p).map(|e| e.clone())
    }

    /// Updates `p`'s entry in place, or inserts a fresh one (evicting
    /// LRU past the shard bound). Returns how many entries this store
    /// evicted, so callers can attribute evictions to themselves.
    fn upsert(&self, p: &Predicate, update: impl FnOnce(&mut CachedEval)) -> u64 {
        let cap = self.shard_cap();
        let mut shard = self.shard(p).lock();
        if let Some(e) = shard.get_mut(p) {
            update(e);
            return 0;
        }
        let mut e = CachedEval::default();
        update(&mut e);
        let n = shard.insert(p, e, cap);
        drop(shard);
        self.count_evictions(n);
        n
    }

    fn store_groups(&self, p: &Predicate, groups: Arc<GroupPairs>) -> u64 {
        self.upsert(p, |e| e.groups = Some(groups))
    }

    fn store_max_tuple(&self, p: &Predicate, v: f64) -> u64 {
        self.upsert(p, |e| e.max_tuple = Some(v))
    }
}

/// Influence evaluator bound to one labeled query.
pub struct Scorer<'a> {
    table: &'a Table,
    agg: &'a dyn Aggregate,
    inc: Option<&'a dyn IncrementalAggregate>,
    agg_attr: usize,
    /// The full aggregate-attribute column (masked folds index it by
    /// global row id).
    vals: &'a [f64],
    outliers: Vec<GroupCtx>,
    holdouts: Vec<GroupCtx>,
    params: InfluenceParams,
    calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_evictions: AtomicU64,
    cache: Option<Arc<InfluenceCache>>,
    /// Per-clause mask memo: every distinct clause is evaluated against
    /// the table once per cache lifetime, shared by all candidates.
    masks: Arc<ClauseMaskCache>,
    /// Clause-mask lookups *this Scorer* answered from the cache —
    /// attribution stays per-run even when concurrent runs share one
    /// cache (mirrors the per-Scorer `cache_hits` counter).
    mask_hits: AtomicU64,
    /// Nanoseconds spent in uncached mask-path evaluations, and how
    /// many there were — the `scorer.mask` phase.
    mask_nanos: AtomicU64,
    mask_timed: AtomicU64,
    /// Nanoseconds spent in the row-at-a-time oracle — the
    /// `scorer.rowwise` phase.
    rowwise_nanos: AtomicU64,
    rowwise_timed: AtomicU64,
    /// Sampler state of the two-stage approximate search; `None` keeps
    /// every batch exact.
    approx: Option<Arc<ApproxState>>,
    /// Candidates discarded by interval pruning
    /// ([`Scorer::influence_batch_pruned`]) on this Scorer.
    pruned: AtomicU64,
    /// Bit pattern of the largest per-batch error bound seen so far
    /// (bounds are non-negative, so `f64` bit order equals value order
    /// and a monotonic `fetch_max` suffices).
    bound_bits: AtomicU64,
    /// Nanoseconds building sampler state — the `sampler.build` phase.
    sampler_build_nanos: AtomicU64,
    sampler_build_timed: AtomicU64,
    /// Nanoseconds in interval-bound passes — the `sampler.bound` phase.
    sampler_bound_nanos: AtomicU64,
    sampler_bound_timed: AtomicU64,
}

impl<'a> Scorer<'a> {
    /// Builds a Scorer.
    ///
    /// `force_blackbox` disables the incremental fast path even when the
    /// aggregate supports it (used by the Scorer ablation benchmarks).
    pub fn new(
        table: &'a Table,
        agg: &'a dyn Aggregate,
        agg_attr: usize,
        outliers: Vec<GroupSpec>,
        holdouts: Vec<GroupSpec>,
        params: InfluenceParams,
        force_blackbox: bool,
    ) -> Result<Self> {
        let handle = |spec: GroupSpec| -> GroupHandle {
            let mut rows = spec.rows;
            rows.sort_unstable();
            rows.dedup();
            let mask = Arc::new(RowMask::from_rows(table.len(), &rows));
            GroupHandle { rows: rows.into(), mask, error: spec.error }
        };
        Scorer::from_handles(
            table,
            agg,
            agg_attr,
            outliers.into_iter().map(handle).collect(),
            holdouts.into_iter().map(handle).collect(),
            params,
            force_blackbox,
        )
    }

    /// Builds a Scorer from pre-shared group handles (row slices +
    /// masks), avoiding any per-group copying — the path
    /// [`crate::LabeledQuery::scorer`] takes from a grouping's cached
    /// shared groups.
    pub(crate) fn from_handles(
        table: &'a Table,
        agg: &'a dyn Aggregate,
        agg_attr: usize,
        outliers: Vec<GroupHandle>,
        holdouts: Vec<GroupHandle>,
        params: InfluenceParams,
        force_blackbox: bool,
    ) -> Result<Self> {
        if outliers.is_empty() {
            return Err(ScorpionError::NoOutliers);
        }
        if !(0.0..=1.0).contains(&params.lambda) {
            return Err(ScorpionError::BadConfig("lambda must be in [0, 1]"));
        }
        if params.c < 0.0 {
            return Err(ScorpionError::BadConfig("c must be non-negative"));
        }
        let inc = if force_blackbox { None } else { agg.incremental() };
        let vals = table.num(agg_attr)?;
        let build = |h: GroupHandle, default_error: Option<f64>| -> GroupCtx {
            let values: Vec<f64> = h.rows.iter().map(|&r| vals[r as usize]).collect();
            let full_state = inc.map(|i| i.state_of(&values));
            let full_value = match (&full_state, inc) {
                (Some(s), Some(i)) => i.recover(s),
                _ => agg.compute(&values),
            };
            let span = h.mask.nonzero_word_span();
            GroupCtx {
                rows: h.rows,
                mask: h.mask,
                span,
                values,
                error: default_error.unwrap_or(h.error),
                full_value,
                full_state,
                tuple_deltas: OnceLock::new(),
            }
        };
        Ok(Scorer {
            table,
            agg,
            inc,
            agg_attr,
            vals,
            outliers: outliers.into_iter().map(|h| build(h, None)).collect(),
            holdouts: holdouts.into_iter().map(|h| build(h, Some(1.0))).collect(),
            params,
            calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache: None,
            masks: Arc::new(ClauseMaskCache::new()),
            mask_hits: AtomicU64::new(0),
            mask_nanos: AtomicU64::new(0),
            mask_timed: AtomicU64::new(0),
            rowwise_nanos: AtomicU64::new(0),
            rowwise_timed: AtomicU64::new(0),
            approx: None,
            pruned: AtomicU64::new(0),
            bound_bits: AtomicU64::new(0),
            sampler_build_nanos: AtomicU64::new(0),
            sampler_build_timed: AtomicU64::new(0),
            sampler_bound_nanos: AtomicU64::new(0),
            sampler_bound_timed: AtomicU64::new(0),
        })
    }

    /// Attaches a shared [`InfluenceCache`]. The cache must have been
    /// built for this exact labeled query (same table, labels, and
    /// aggregate) — entries are parameter-agnostic but data-specific.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<InfluenceCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a shared [`ClauseMaskCache`]. The cache is
    /// table-specific: attach one per table snapshot (plans do this so
    /// every run over the same table reuses its clause masks) and drop
    /// it when the table changes.
    #[must_use]
    pub fn with_mask_cache(mut self, masks: Arc<ClauseMaskCache>) -> Self {
        self.masks = masks;
        self
    }

    /// The clause-mask cache this Scorer evaluates through.
    pub fn mask_cache(&self) -> &Arc<ClauseMaskCache> {
        &self.masks
    }

    /// Clause-mask lookups this Scorer answered from its cache. Only
    /// this Scorer's own lookups count, so attribution stays correct
    /// when concurrent runs share one cache.
    pub fn mask_cache_hits(&self) -> u64 {
        self.mask_hits.load(Ordering::Relaxed)
    }

    /// Distinct clauses currently resident in the attached cache.
    pub fn mask_cache_entries(&self) -> u64 {
        self.masks.len() as u64
    }

    /// The table this Scorer evaluates against.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The aggregate attribute index.
    pub fn agg_attr(&self) -> usize {
        self.agg_attr
    }

    /// The influence parameters in force.
    pub fn params(&self) -> InfluenceParams {
        self.params
    }

    /// Returns a Scorer identical to this one but with different
    /// influence parameters. Group handles (row slices and masks) are
    /// shared by `Arc`, and the attached [`InfluenceCache`] and
    /// [`ClauseMaskCache`] are carried over (both are
    /// parameter-agnostic).
    pub fn with_params(&self, params: InfluenceParams) -> Result<Scorer<'a>> {
        let handles = |groups: &[GroupCtx]| {
            groups
                .iter()
                .map(|g| GroupHandle { rows: g.rows.clone(), mask: g.mask.clone(), error: g.error })
                .collect()
        };
        let mut s = Scorer::from_handles(
            self.table,
            self.agg,
            self.agg_attr,
            handles(&self.outliers),
            handles(&self.holdouts),
            params,
            self.inc.is_none() && self.agg.incremental().is_some(),
        )?;
        s.cache = self.cache.clone();
        s.masks = self.masks.clone();
        s.approx = self.approx.clone();
        Ok(s)
    }

    /// Builds the approximate-search sampler state
    /// ([`crate::ApproxState`]) for this labeled query under `cfg`.
    ///
    /// Expensive relative to a single batch (each group's unsampled
    /// values are sorted), so build once per data snapshot and attach
    /// the `Arc` to every scorer over that snapshot with
    /// [`Scorer::with_approx_state`]; engines do this in `prepare` and
    /// rebuild on rebind. Aggregates without a `(count, sum)`-determined
    /// state yield a *fallback* state: attaching it still succeeds, but
    /// batches score exactly and diagnostics carry the reason.
    pub fn build_approx(&self, cfg: ApproxConfig) -> Result<Arc<ApproxState>> {
        if cfg.validate().is_err() {
            return Err(ScorpionError::BadConfig(
                "approx sample_rate must be in (0.0, 1.0] and confidence in (0.5, 1.0]",
            ));
        }
        let start = Instant::now();
        let fallback = match self.inc {
            None => Some("aggregate is not incrementally removable; scored exactly"),
            // Probe the closed-form hook once: the empty removal is
            // representable iff any (count, sum) pair is.
            Some(inc) if inc.state_from_count_sum(0.0, 0.0).is_none() => {
                Some("aggregate state is not determined by (count, sum); scored exactly")
            }
            Some(_) => None,
        };
        let build = |groups: &[GroupCtx]| -> Vec<GroupSample> {
            if fallback.is_some() {
                return Vec::new();
            }
            groups
                .iter()
                .map(|g| GroupSample::build(self.table.len(), &g.rows, &g.values, &cfg))
                .collect()
        };
        let (outliers, holdouts) = (build(&self.outliers), build(&self.holdouts));
        let state = ApproxState::assemble(
            cfg,
            outliers,
            holdouts,
            fallback,
            self.vals,
            start.elapsed().as_nanos() as u64,
        );
        self.sampler_build_nanos.fetch_add(state.build_nanos, Ordering::Relaxed);
        self.sampler_build_timed.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(state))
    }

    /// Attaches prebuilt sampler state. The state must have been built
    /// for this exact labeled query (same table, labels, and aggregate —
    /// samples are row-id- and value-specific, though parameter-agnostic
    /// like the influence cache).
    #[must_use]
    pub fn with_approx_state(mut self, state: Arc<ApproxState>) -> Self {
        self.approx = Some(state);
        self
    }

    /// Builds sampler state under `cfg` and attaches it — the one-shot
    /// convenience over [`Scorer::build_approx`] +
    /// [`Scorer::with_approx_state`].
    pub fn with_approx(self, cfg: ApproxConfig) -> Result<Self> {
        let state = self.build_approx(cfg)?;
        Ok(self.with_approx_state(state))
    }

    /// The attached sampler state, if any.
    pub fn approx_state(&self) -> Option<&Arc<ApproxState>> {
        self.approx.as_ref()
    }

    /// Candidates discarded by interval pruning on this Scorer.
    pub fn candidates_pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// The largest per-batch pruning error bound this Scorer reported:
    /// the worst distance between a pruned candidate's estimated
    /// influence and its interval edge. `0.0` when nothing was pruned —
    /// every score returned so far is then exact.
    pub fn approx_error_bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    /// True when the incremental (§5.1) fast path is active.
    pub fn is_incremental(&self) -> bool {
        self.inc.is_some()
    }

    /// Number of outlier groups.
    pub fn n_outliers(&self) -> usize {
        self.outliers.len()
    }

    /// Number of hold-out groups.
    pub fn n_holdouts(&self) -> usize {
        self.holdouts.len()
    }

    /// Row ids of outlier group `g`.
    pub fn outlier_rows(&self, g: usize) -> &[u32] {
        &self.outliers[g].rows
    }

    /// Row ids of hold-out group `g`.
    pub fn holdout_rows(&self, g: usize) -> &[u32] {
        &self.holdouts[g].rows
    }

    /// Aggregate-attribute values of outlier group `g` (aligned with
    /// [`Scorer::outlier_rows`]).
    pub fn outlier_values(&self, g: usize) -> &[f64] {
        &self.outliers[g].values
    }

    /// Aggregate-attribute values of hold-out group `g`.
    pub fn holdout_values(&self, g: usize) -> &[f64] {
        &self.holdouts[g].values
    }

    /// The error-vector component of outlier group `g`.
    pub fn outlier_error(&self, g: usize) -> f64 {
        self.outliers[g].error
    }

    /// Number of influence evaluations performed so far. Cache hits are
    /// not counted — they perform no matcher or aggregate work.
    pub fn scorer_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of influence evaluations answered from the attached
    /// [`InfluenceCache`].
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of LRU evictions *this Scorer's* stores caused in the
    /// attached [`InfluenceCache`] — attribution stays correct when
    /// several runs share one cache concurrently.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Wall-clock attribution of this Scorer's uncached evaluations:
    /// time in the vectorized mask-kernel path (`scorer.mask`) vs the
    /// row-at-a-time oracle (`scorer.rowwise`), plus the approximate
    /// search's sampler-state construction (`sampler.build`) and
    /// interval-bound passes (`sampler.bound`). Cache hits do none of
    /// these kinds of work and are not timed.
    pub fn timing_phases(&self) -> Vec<PhaseTiming> {
        [
            ("scorer.mask", &self.mask_nanos, &self.mask_timed),
            ("scorer.rowwise", &self.rowwise_nanos, &self.rowwise_timed),
            ("sampler.build", &self.sampler_build_nanos, &self.sampler_build_timed),
            ("sampler.bound", &self.sampler_bound_nanos, &self.sampler_bound_timed),
        ]
        .into_iter()
        .filter_map(|(name, nanos, count)| {
            let count = count.load(Ordering::Relaxed);
            (count > 0).then(|| PhaseTiming { name, nanos: nanos.load(Ordering::Relaxed), count })
        })
        .collect()
    }

    #[inline]
    fn note_mask_time(&self, start: Instant) {
        self.mask_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.mask_timed.fetch_add(1, Ordering::Relaxed);
    }

    /// The bitmap of `p` over this Scorer's table, through the attached
    /// clause-mask cache (hits attributed to this Scorer).
    pub(crate) fn predicate_mask(&self, p: &Predicate) -> Result<PredicateMask> {
        let (mask, hits) = p.mask_with_hits(self.table, &self.masks)?;
        if hits > 0 {
            self.mask_hits.fetch_add(hits, Ordering::Relaxed);
        }
        Ok(mask)
    }

    /// `Δ` and match count of `p` (as a mask) over one group: a
    /// word-wise zip of the predicate mask against the group's base
    /// mask. `n` comes from popcount; `Δ` from a masked [`AggState`]
    /// fold (incremental path) or a masked gather of the survivors
    /// (black-box path). All-zero words — groups the predicate does not
    /// touch — cost one `AND` per 64 rows.
    ///
    /// Rows are visited in ascending order, which is exactly the order
    /// the row-at-a-time oracle visits them (group rows are normalized
    /// ascending), so the floating-point accumulation is bit-identical
    /// to [`Scorer::influence_rowwise`].
    fn delta_ctx(&self, ctx: &GroupCtx, pm: &RowMask) -> (f64, usize) {
        let gw = ctx.mask.words();
        let pw = pm.words();
        match (self.inc, &ctx.full_state) {
            (Some(inc), Some(full)) => {
                let mut sub = AggState::zero(inc.state_len());
                let mut n = 0usize;
                // Chunked word-zip: AND and popcount 8 words at a time
                // (branch-free, auto-vectorizable), then bit-walk only
                // the chunks that matched anything. Rows are still
                // visited strictly ascending — the chunking reorders no
                // accumulation, so the fold stays bit-identical to the
                // rowwise oracle.
                let mut wi = ctx.span.start;
                let chunk_end = ctx.span.start + (ctx.span.len() & !7);
                while wi < chunk_end {
                    let mut anded = [0u64; 8];
                    let mut any = 0u64;
                    for (lane, a) in anded.iter_mut().enumerate() {
                        let w = gw[wi + lane] & pw[wi + lane];
                        *a = w;
                        any |= w;
                        n += w.count_ones() as usize;
                    }
                    if any != 0 {
                        for (lane, &a) in anded.iter().enumerate() {
                            let mut w = a;
                            while w != 0 {
                                let row = (((wi + lane) as u32) << 6) | w.trailing_zeros();
                                sub.accumulate(&inc.state_one(self.vals[row as usize]));
                                w &= w - 1;
                            }
                        }
                    }
                    wi += 8;
                }
                for wi in chunk_end..ctx.span.end {
                    let mut w = gw[wi] & pw[wi];
                    n += w.count_ones() as usize;
                    while w != 0 {
                        let row = ((wi as u32) << 6) | w.trailing_zeros();
                        sub.accumulate(&inc.state_one(self.vals[row as usize]));
                        w &= w - 1;
                    }
                }
                if n == 0 {
                    return (0.0, 0);
                }
                (ctx.full_value - inc.recover(&inc.remove(full, &sub)), n)
            }
            _ => {
                let mut kept = Vec::with_capacity(ctx.rows.len());
                let mut n = 0usize;
                for wi in ctx.span.clone() {
                    let g = gw[wi];
                    n += (g & pw[wi]).count_ones() as usize;
                    let mut w = g & !pw[wi];
                    while w != 0 {
                        let row = ((wi as u32) << 6) | w.trailing_zeros();
                        kept.push(self.vals[row as usize]);
                        w &= w - 1;
                    }
                }
                if n == 0 {
                    return (0.0, 0);
                }
                (ctx.full_value - self.agg.compute(&kept), n)
            }
        }
    }

    /// Row-at-a-time `Δ` and match count — the reference oracle the
    /// masked fold is parity-tested against.
    fn delta_ctx_rowwise(&self, ctx: &GroupCtx, m: &PredicateMatcher) -> (f64, usize) {
        match (self.inc, &ctx.full_state) {
            (Some(inc), Some(full)) => {
                let mut sub = AggState::zero(inc.state_len());
                let mut n = 0usize;
                for (i, &row) in ctx.rows.iter().enumerate() {
                    if m.matches(row) {
                        sub.accumulate(&inc.state_one(ctx.values[i]));
                        n += 1;
                    }
                }
                if n == 0 {
                    return (0.0, 0);
                }
                (ctx.full_value - inc.recover(&inc.remove(full, &sub)), n)
            }
            _ => {
                let mut kept = Vec::with_capacity(ctx.rows.len());
                for (i, &row) in ctx.rows.iter().enumerate() {
                    if !m.matches(row) {
                        kept.push(ctx.values[i]);
                    }
                }
                let n = ctx.rows.len() - kept.len();
                if n == 0 {
                    return (0.0, 0);
                }
                (ctx.full_value - self.agg.compute(&kept), n)
            }
        }
    }

    /// Full influence computed entirely row-at-a-time through the
    /// [`PredicateMatcher`] — the pre-vectorization reference
    /// implementation, kept as the parity oracle (and the baseline the
    /// `influence_throughput` bench measures the mask path against). No
    /// caches are consulted and no counters advance.
    pub fn influence_rowwise(&self, p: &Predicate) -> Result<f64> {
        let start = Instant::now();
        let m = p.matcher(self.table)?;
        let mut sum = 0.0;
        for ctx in &self.outliers {
            let (d, n) = self.delta_ctx_rowwise(ctx, &m);
            sum += self.inf_from_delta(d, n as f64, ctx.error);
        }
        let out = sum / self.outliers.len() as f64;
        let mut hold = 0.0f64;
        for ctx in &self.holdouts {
            let (d, n) = self.delta_ctx_rowwise(ctx, &m);
            hold = hold.max(self.inf_from_delta(d, n as f64, 1.0).abs());
        }
        self.rowwise_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.rowwise_timed.fetch_add(1, Ordering::Relaxed);
        Ok(self.combine_terms(out, hold))
    }

    /// `inf = v · Δ / n^c`, with the empty selection defined as zero.
    #[inline]
    fn inf_from_delta(&self, delta: f64, n: f64, error: f64) -> f64 {
        if n == 0.0 {
            0.0
        } else {
            error * delta / n.powf(self.params.c)
        }
    }

    /// `(n, Δ)` of `p` over every outlier group, in Scorer order.
    fn outlier_pairs(&self, pm: &RowMask) -> Box<[(f64, f64)]> {
        self.outliers
            .iter()
            .map(|ctx| {
                let (d, n) = self.delta_ctx(ctx, pm);
                (n as f64, d)
            })
            .collect()
    }

    /// `(n, Δ)` of `p` over every hold-out group, in Scorer order.
    fn holdout_pairs(&self, pm: &RowMask) -> Box<[(f64, f64)]> {
        self.holdouts
            .iter()
            .map(|ctx| {
                let (d, n) = self.delta_ctx(ctx, pm);
                (n as f64, d)
            })
            .collect()
    }

    /// `λ·(1/|O|)·Σ_o inf(o,p,v_o)` from per-group `(n, Δ)` pairs.
    fn outlier_term_from(&self, pairs: &[(f64, f64)]) -> f64 {
        debug_assert_eq!(
            pairs.len(),
            self.outliers.len(),
            "cached pairs belong to a different labeled query"
        );
        let mut sum = 0.0;
        for (ctx, &(n, d)) in self.outliers.iter().zip(pairs) {
            sum += self.inf_from_delta(d, n, ctx.error);
        }
        sum / self.outliers.len() as f64
    }

    /// `max_h |inf(h,p)|` from per-group `(n, Δ)` pairs.
    fn holdout_term_from(&self, pairs: &[(f64, f64)]) -> f64 {
        debug_assert_eq!(
            pairs.len(),
            self.holdouts.len(),
            "cached pairs belong to a different labeled query"
        );
        let mut max = 0.0f64;
        for &(n, d) in pairs {
            max = max.max(self.inf_from_delta(d, n, 1.0).abs());
        }
        max
    }

    /// Streaming (allocation-free) outlier term, for the uncached path.
    fn outlier_term_direct(&self, pm: &RowMask) -> f64 {
        let mut sum = 0.0;
        for ctx in &self.outliers {
            let (d, n) = self.delta_ctx(ctx, pm);
            sum += self.inf_from_delta(d, n as f64, ctx.error);
        }
        sum / self.outliers.len() as f64
    }

    /// Streaming (allocation-free) hold-out term, for the uncached path.
    fn holdout_term_direct(&self, pm: &RowMask) -> f64 {
        let mut max = 0.0f64;
        for ctx in &self.holdouts {
            let (d, n) = self.delta_ctx(ctx, pm);
            max = max.max(self.inf_from_delta(d, n as f64, 1.0).abs());
        }
        max
    }

    fn combine_terms(&self, out: f64, hold: f64) -> f64 {
        self.params.lambda * out - (1.0 - self.params.lambda) * hold
    }

    /// Full influence `inf(O, H, p, V)` (§3.2):
    /// `λ·(1/|O|)·Σ_o inf(o,p,v_o) − (1−λ)·max_h |inf(h,p)|`.
    ///
    /// With an attached [`InfluenceCache`], known predicates are scored
    /// from their cached per-group `(n, Δ)` pairs — no mask pass, no
    /// `scorer_calls` increment, and a result bit-identical to the
    /// direct computation at the current parameters. Without a cache the
    /// terms are folded directly from the predicate's mask.
    pub fn influence(&self, p: &Predicate) -> Result<f64> {
        let Some(cache) = &self.cache else {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            let pm = self.predicate_mask(p)?;
            let inf =
                self.combine_terms(self.outlier_term_direct(&pm), self.holdout_term_direct(&pm));
            self.note_mask_time(start);
            return Ok(inf);
        };
        if let Some(CachedEval { groups: Some(g), .. }) = cache.get(p) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(
                self.combine_terms(self.outlier_term_from(&g.0), self.holdout_term_from(&g.1))
            );
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let pm = self.predicate_mask(p)?;
        let (o, h) = (self.outlier_pairs(&pm), self.holdout_pairs(&pm));
        let inf = self.combine_terms(self.outlier_term_from(&o), self.holdout_term_from(&h));
        self.note_mask_time(start);
        let evicted = cache.store_groups(p, Arc::new((o, h)));
        self.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(inf)
    }

    /// Hold-out-free influence `inf(O, ∅, p, V)` — MC's conservative
    /// pruning estimate (§6.2, Figure 6a).
    ///
    /// On a cache miss with an attached cache, the hold-out groups are
    /// evaluated too so the stored entry can also answer later full
    /// [`Scorer::influence`] calls.
    pub fn influence_outliers_only(&self, p: &Predicate) -> Result<f64> {
        let Some(cache) = &self.cache else {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            let pm = self.predicate_mask(p)?;
            let inf = self.params.lambda * self.outlier_term_direct(&pm);
            self.note_mask_time(start);
            return Ok(inf);
        };
        if let Some(CachedEval { groups: Some(g), .. }) = cache.get(p) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.params.lambda * self.outlier_term_from(&g.0));
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let pm = self.predicate_mask(p)?;
        let (o, h) = (self.outlier_pairs(&pm), self.holdout_pairs(&pm));
        let inf = self.params.lambda * self.outlier_term_from(&o);
        self.note_mask_time(start);
        let evicted = cache.store_groups(p, Arc::new((o, h)));
        self.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(inf)
    }

    /// Per-tuple deltas of outlier group `g`, aligned with its rows.
    pub fn outlier_tuple_deltas(&self, g: usize) -> &[f64] {
        self.tuple_deltas_of(&self.outliers[g])
    }

    /// Per-tuple deltas of hold-out group `g`, aligned with its rows.
    pub fn holdout_tuple_deltas(&self, g: usize) -> &[f64] {
        self.tuple_deltas_of(&self.holdouts[g])
    }

    /// Per-tuple *influences* of outlier group `g`: `v_o · Δ(t)`
    /// (`|p({t})| = 1`, so the `c` exponent is irrelevant — single-tuple
    /// influence is `c`-agnostic, which is what makes DT partitioning
    /// cacheable across `c`, §8.3.3).
    pub fn outlier_tuple_influences(&self, g: usize) -> Vec<f64> {
        let e = self.outliers[g].error;
        self.outlier_tuple_deltas(g).iter().map(|d| d * e).collect()
    }

    /// Per-tuple influence magnitudes of hold-out group `g`: `|Δ(t)|`.
    pub fn holdout_tuple_influences(&self, g: usize) -> Vec<f64> {
        self.holdout_tuple_deltas(g).iter().map(|d| d.abs()).collect()
    }

    fn tuple_deltas_of<'s>(&'s self, ctx: &'s GroupCtx) -> &'s [f64] {
        ctx.tuple_deltas.get_or_init(|| match (self.inc, &ctx.full_state) {
            (Some(inc), Some(full)) => ctx
                .values
                .iter()
                .map(|&v| ctx.full_value - inc.recover(&inc.remove(full, &inc.state_one(v))))
                .collect(),
            _ => {
                // Black-box: leave-one-out recomputation, O(n²).
                let mut kept = Vec::with_capacity(ctx.values.len().saturating_sub(1));
                ctx.values
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        kept.clear();
                        kept.extend(
                            ctx.values.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v),
                        );
                        ctx.full_value - self.agg.compute(&kept)
                    })
                    .collect()
            }
        })
    }

    /// The maximum single-tuple influence among the outlier tuples matched
    /// by `p` — MC's anti-monotonicity escape hatch (§6.2): with `c = 1`,
    /// `inf(s) = mean_{t∈s} v·Δ(t)`, so no sub-predicate of `p` can exceed
    /// `max_{t∈p(g_O)} inf(t)`.
    pub fn max_tuple_influence(&self, p: &Predicate) -> Result<f64> {
        if let Some(cache) = &self.cache {
            if let Some(CachedEval { max_tuple: Some(v), .. }) = cache.get(p) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        let pm = self.predicate_mask(p)?;
        let mut best = f64::NEG_INFINITY;
        for (g, ctx) in self.outliers.iter().enumerate() {
            let deltas = self.outlier_tuple_deltas(g);
            for (i, &row) in ctx.rows.iter().enumerate() {
                if pm.contains(row) {
                    let inf = ctx.error * deltas[i];
                    if inf > best {
                        best = inf;
                    }
                }
            }
        }
        if let Some(cache) = &self.cache {
            let evicted = cache.store_max_tuple(p, best);
            self.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(best)
    }

    /// Influence estimated from pre-aggregated "removed" states — the
    /// Merger's cached-tuple approximation entry point (§6.3). For each
    /// group the caller supplies the estimated number of matched tuples
    /// and the estimated state of the removed subset.
    ///
    /// Errors with [`ScorpionError::UnsupportedAggregate`] when the
    /// aggregate is not incrementally removable.
    pub fn influence_from_states(
        &self,
        outlier_removed: &[(f64, AggState)],
        holdout_removed: &[(f64, AggState)],
    ) -> Result<f64> {
        let inc = self.inc.ok_or(ScorpionError::UnsupportedAggregate {
            algorithm: "cached-tuple approximation",
            requires: "an incrementally removable aggregate",
        })?;
        debug_assert_eq!(outlier_removed.len(), self.outliers.len());
        debug_assert_eq!(holdout_removed.len(), self.holdouts.len());
        let term = |ctx: &GroupCtx, n: f64, sub: &AggState, error: f64| -> f64 {
            if n <= 0.0 {
                return 0.0;
            }
            let full = ctx.full_state.as_ref().expect("incremental scorer has states");
            let delta = ctx.full_value - inc.recover(&inc.remove(full, sub));
            error * delta / n.powf(self.params.c)
        };
        let mut out = 0.0;
        for (ctx, (n, sub)) in self.outliers.iter().zip(outlier_removed) {
            out += term(ctx, *n, sub, ctx.error);
        }
        out /= self.outliers.len() as f64;
        let mut hold = 0.0f64;
        for (ctx, (n, sub)) in self.holdouts.iter().zip(holdout_removed) {
            hold = hold.max(term(ctx, *n, sub, 1.0).abs());
        }
        Ok(self.params.lambda * out - (1.0 - self.params.lambda) * hold)
    }

    /// The incremental decomposition, if active.
    pub fn incremental_agg(&self) -> Option<&'a dyn IncrementalAggregate> {
        self.inc
    }

    /// Scores a batch of predicates, optionally in parallel.
    ///
    /// §8.3.2 leaves parallelism to future work; this is that extension.
    /// The batch is chunked across `threads` scoped workers, each
    /// evaluating the same shared group state read-only. With
    /// `threads <= 1` the batch is scored sequentially. Results are in
    /// input order; scoring errors surface per predicate.
    ///
    /// Candidates at one DT/MC level share most of their clauses; the
    /// attached [`ClauseMaskCache`] evaluates each *distinct* clause
    /// against the table once for the whole batch. Before fanning out,
    /// the cache is pre-warmed serially so workers never race to build
    /// the same clause mask.
    pub fn influence_batch(&self, preds: &[Predicate], threads: usize) -> Vec<Result<f64>> {
        if threads <= 1 || preds.len() < 2 {
            return preds.iter().map(|p| self.influence(p)).collect();
        }
        for p in preds {
            // Errors resurface per predicate during scoring.
            if let Ok(hits) = p.warm_masks(self.table, &self.masks) {
                self.mask_hits.fetch_add(hits, Ordering::Relaxed);
            }
        }
        let threads = threads.min(preds.len());
        let chunk = preds.len().div_ceil(threads);
        let mut out: Vec<Result<f64>> = Vec::with_capacity(preds.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = preds
                .chunks(chunk)
                .map(|chunk| {
                    s.spawn(move || chunk.iter().map(|p| self.influence(p)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("scoring worker panicked"));
            }
        });
        out
    }

    /// The candidate's per-slot `(k, s)` — matched *sampled* row count
    /// and value-sum for every labeled group at once — from one word
    /// loop over the candidate's compressed (sample-universe) bitmap:
    /// the AND of its clauses' compressed bitmaps, each memoized in the
    /// state by [`ApproxState::compressed_clause`]. The universe is two
    /// orders of magnitude smaller than the table, which is what makes
    /// the bound pass cheap enough to win even when it prunes nothing.
    ///
    /// Results land in `scratch` (reused across the batch to keep the
    /// pass allocation-free). `None` when a clause's mask cannot be
    /// evaluated; the caller lets such candidates survive to exact
    /// scoring, which surfaces the error per predicate.
    fn sampled_stats(
        &self,
        p: &Predicate,
        st: &ApproxState,
        scratch: &mut BoundScratch,
    ) -> Option<()> {
        let clause_masks = &mut scratch.clause_masks;
        let comps = &mut scratch.comps;
        clause_masks.clear();
        comps.clear();
        for clause in p.clauses() {
            let (full, hit) = self
                .masks
                .get_or_eval_flagged(clause, || {
                    let col = self.table.column(clause.attr())?;
                    clause.eval_mask(col).ok_or_else(|| scorpion_table::TableError::TypeMismatch {
                        attr: format!("attr{}", clause.attr()),
                        expected: "clause-compatible",
                    })
                })
                .ok()?;
            if hit {
                self.mask_hits.fetch_add(1, Ordering::Relaxed);
            }
            comps.push(st.compressed_clause(clause, &full));
            clause_masks.push(full);
        }
        // The conjunction word is assembled on the fly (the match arm is
        // branch-predicted perfectly within a candidate); no conjunction
        // bitmap is materialized. Compressed clause bitmaps have all
        // out-of-universe tail bits clear, and the empty-conjunction
        // `u64::MAX` case is tail-safe because the per-slot edge masks
        // below never admit positions outside `slot_ranges`.
        let word_at = |wi: usize| -> u64 {
            match comps.as_slice() {
                [] => u64::MAX,
                [a] => a[wi],
                [a, b] => a[wi] & b[wi],
                many => many.iter().fold(u64::MAX, |acc, m| acc & m[wi]),
            }
        };
        let slots = st.slot_ranges.len();
        let (ks, ss) = (&mut scratch.ks, &mut scratch.ss);
        ks.clear();
        ks.resize(slots, 0);
        ss.clear();
        ss.resize(slots, 0.0);
        for (slot, range) in st.slot_ranges.iter().enumerate() {
            if range.is_empty() {
                continue;
            }
            let (w0, w1) = (range.start >> 6, (range.end - 1) >> 6);
            let mut k = 0u32;
            // Two accumulator lanes break the floating-point add
            // dependency chain; the lane split is positional, hence
            // deterministic.
            let (mut s0, mut s1) = (0.0f64, 0.0f64);
            for wi in w0..=w1 {
                let mut w = word_at(wi);
                if wi == w0 && range.start & 63 != 0 {
                    w &= u64::MAX << (range.start & 63);
                }
                if wi == w1 && range.end & 63 != 0 {
                    w &= (1u64 << (range.end & 63)) - 1;
                }
                k += w.count_ones();
                while w != 0 {
                    let pos = (wi << 6) | w.trailing_zeros() as usize;
                    s0 += st.universe_vals[pos];
                    w &= w - 1;
                    if w == 0 {
                        break;
                    }
                    let pos = (wi << 6) | w.trailing_zeros() as usize;
                    s1 += st.universe_vals[pos];
                    w &= w - 1;
                }
            }
            ks[slot] = k;
            ss[slot] = s0 + s1;
        }
        Some(())
    }

    /// `(n, Δ_lo, Δ_hi, Δ_est)` of a candidate over one group: `n` is
    /// exact (a fused AND-popcount of the clause masks against the group
    /// mask over its nonzero word span — no conjunction bitmap is ever
    /// materialized), the sampled matched values are exact (`k`, `s`
    /// from [`Scorer::sampled_stats`]), and the unsampled matched
    /// value-sum is bracketed through
    /// [`GroupSample::removed_sum_bounds`]. The Δ endpoints come from
    /// evaluating the aggregate's closed-form `(count, sum)` delta at
    /// both sum endpoints — monotone in the sum for every aggregate
    /// implementing the hook, so the endpoints bracket the true Δ.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn delta_interval(
        &self,
        ctx: &GroupCtx,
        gs: &GroupSample,
        clause_masks: &[Arc<RowMask>],
        k: u32,
        s: f64,
        inc: &dyn IncrementalAggregate,
        lead: &mut HashMap<(usize, usize), Vec<u64>>,
    ) -> (usize, f64, f64, f64) {
        let gw = ctx.mask.words();
        let n: usize = match clause_masks {
            [] => ctx.rows.len(),
            [a] => {
                let span = ctx.span.clone();
                intersect_count_words(&gw[span.clone()], &a.words()[span])
            }
            [a, b] => {
                // Candidates at one DT/MC level share leading clauses,
                // so `group ∧ leading-clause` is memoized per batch and
                // the triple intersection becomes a double one against a
                // cache-hot scratch row. Keys are addresses: the group
                // contexts and the cached clause masks are both pinned
                // for the batch's lifetime.
                let span = ctx.span.clone();
                let key = (ctx as *const GroupCtx as usize, Arc::as_ptr(a) as usize);
                let ga = lead.entry(key).or_insert_with(|| {
                    gw[span.clone()]
                        .iter()
                        .zip(&a.words()[span.clone()])
                        .map(|(&g, &x)| g & x)
                        .collect()
                });
                intersect_count_words(ga, &b.words()[span])
            }
            many => {
                let mut n = 0usize;
                for wi in ctx.span.clone() {
                    let mut w = gw[wi];
                    for m in many {
                        w &= m.words()[wi];
                    }
                    n += w.count_ones() as usize;
                }
                n
            }
        };
        if n == 0 {
            return (0, 0.0, 0.0, 0.0);
        }
        let (rs_lo, rs_est, rs_hi) = gs.removed_sum_bounds(s, n - k as usize);
        let full = ctx.full_state.as_ref().expect("approx states imply incremental state");
        let d_at = |rs: f64| {
            inc.delta_from_count_sum(full, ctx.full_value, n as f64, rs)
                .expect("probed at build time")
        };
        let (a, b) = (d_at(rs_lo), d_at(rs_hi));
        (n, a.min(b), a.max(b), d_at(rs_est))
    }

    /// The influence interval of a candidate under the attached sampler
    /// state: per-group Δ intervals pushed through the §3.2 arithmetic
    /// with endpoint monotonicity (the outlier term is a sum of linear
    /// images; the hold-out term maxes `|Δ|/n^c` intervals). `None` when
    /// the candidate's masks cannot be evaluated.
    fn influence_interval(
        &self,
        p: &Predicate,
        st: &ApproxState,
        scratch: &mut BoundScratch,
    ) -> Option<InfluenceInterval> {
        let inc = self.inc.expect("fallback states never reach the interval pass");
        self.sampled_stats(p, st, scratch)?;
        let BoundScratch { clause_masks: cms, ks, ss, lead, .. } = scratch;
        let c = self.params.c;
        let (mut out_lo, mut out_hi, mut out_est) = (0.0f64, 0.0f64, 0.0f64);
        for (slot, (ctx, gs)) in self.outliers.iter().zip(&st.outliers).enumerate() {
            let (n, d_lo, d_hi, d_est) =
                self.delta_interval(ctx, gs, cms, ks[slot], ss[slot], inc, lead);
            if n == 0 {
                continue;
            }
            let scale = ctx.error / pow_c(n as f64, c);
            let (a, b) = (d_lo * scale, d_hi * scale);
            out_lo += a.min(b);
            out_hi += a.max(b);
            out_est += d_est * scale;
        }
        let m = self.outliers.len() as f64;
        let (out_lo, out_hi, out_est) = (out_lo / m, out_hi / m, out_est / m);
        // Hold-out: `max(0, max_g t_g)` with `t_g ∈ [a_g, b_g]` lies in
        // `[max(0, max_g a_g), max(0, max_g b_g)]`.
        let base = self.outliers.len();
        let (mut hold_lo, mut hold_hi, mut hold_est) = (0.0f64, 0.0f64, 0.0f64);
        for (slot, (ctx, gs)) in self.holdouts.iter().zip(&st.holdouts).enumerate() {
            let (n, d_lo, d_hi, d_est) =
                self.delta_interval(ctx, gs, cms, ks[base + slot], ss[base + slot], inc, lead);
            if n == 0 {
                continue;
            }
            let scale = pow_c(n as f64, c).recip();
            let abs_lo =
                if d_lo <= 0.0 && d_hi >= 0.0 { 0.0 } else { d_lo.abs().min(d_hi.abs()) * scale };
            hold_lo = hold_lo.max(abs_lo);
            hold_hi = hold_hi.max(d_lo.abs().max(d_hi.abs()) * scale);
            hold_est = hold_est.max(d_est.abs() * scale);
        }
        let l = self.params.lambda;
        let mut lo = l * out_lo - (1.0 - l) * hold_hi;
        let mut hi = l * out_hi - (1.0 - l) * hold_lo;
        let est = l * out_est - (1.0 - l) * hold_est;
        // Pad the envelope against floating-point slop between this
        // arithmetic and the exact path's row-order accumulation, so
        // "the true influence lies inside" survives rounding.
        let pad = 1e-9 * (lo.abs().max(hi.abs()) + 1.0);
        lo -= pad;
        hi += pad;
        Some(InfluenceInterval { lo, hi, est })
    }

    /// Two-stage batch scoring: interval-prune, then score survivors
    /// exactly ([`Scorer::influence_batch`] semantics and threading).
    ///
    /// With attached sampler state, every candidate first gets a cheap
    /// influence interval; the pruning threshold `L` is the `top_k`-th
    /// largest interval *lower* bound, and candidates whose *upper*
    /// bound falls below `L` are dropped (their reported score is the
    /// interval's point estimate). Survivors are then scored exactly in
    /// descending-estimate order, with `L` refined to the `top_k`-th
    /// largest *exact* score seen so far, pruning borderline survivors
    /// the static pass could not. Either way a pruned candidate's true
    /// influence sits below its upper bound, hence below the threshold
    /// in force, hence below at least `top_k` exact scores — so the
    /// returned top-`top_k` scores, and in particular the best
    /// predicate, are always exact.
    ///
    /// Without sampler state (or with a fallback state) this is exactly
    /// [`Scorer::influence_batch`] with zero pruning.
    pub fn influence_batch_pruned(
        &self,
        preds: &[Predicate],
        threads: usize,
        top_k: usize,
    ) -> PrunedBatch {
        let top_k = top_k.max(1);
        let exact_only = match &self.approx {
            None => true,
            Some(st) => st.fallback.is_some() || preds.len() <= top_k,
        };
        if exact_only {
            return PrunedBatch {
                scores: self.influence_batch(preds, threads),
                pruned: 0,
                error_bound: 0.0,
            };
        }
        let st = self.approx.as_ref().expect("checked above").clone();
        let start = Instant::now();
        // No cache pre-warm pass: `sampled_stats` evaluates (and counts
        // hits for) each distinct clause itself, and the survivor batch
        // re-warms serially before any fan-out.
        let mut scratch = BoundScratch::default();
        let intervals: Vec<Option<InfluenceInterval>> =
            preds.iter().map(|p| self.influence_interval(p, &st, &mut scratch)).collect();
        let mut los: Vec<f64> = intervals.iter().flatten().map(|iv| iv.lo).collect();
        let threshold = if los.len() > top_k {
            los.select_nth_unstable_by(top_k - 1, |a, b| b.total_cmp(a));
            los[top_k - 1]
        } else {
            f64::NEG_INFINITY
        };
        self.sampler_bound_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.sampler_bound_timed.fetch_add(1, Ordering::Relaxed);
        // NaN-safe survivorship: only a *provably* dominated candidate
        // (`hi < L`) is pruned; NaN intervals and mask errors survive to
        // exact scoring.
        let survives: Vec<bool> = intervals
            .iter()
            .map(|iv| {
                iv.map(|iv| iv.hi.partial_cmp(&threshold) != Some(std::cmp::Ordering::Less))
                    .unwrap_or(true)
            })
            .collect();
        let mut order: Vec<usize> = (0..preds.len()).filter(|&i| survives[i]).collect();
        let mut error_bound = 0.0f64;
        let mut pruned = 0u64;
        let mut scores: Vec<Result<f64>> = preds.iter().map(|_| Ok(f64::NAN)).collect();
        if threads <= 1 || order.len() < 2 {
            // Dynamic threshold refinement (threshold-algorithm style):
            // survivors are visited in descending order of their interval
            // estimate, so the strongest candidates are scored exactly
            // first and the pruning threshold is raised to the `top_k`-th
            // largest *exact* score seen so far. A later survivor whose
            // upper bound falls below that refined threshold is provably
            // outside the exact top-`top_k` and is pruned without exact
            // scoring — the same invariant as the static pass, with a
            // tighter `L`. Candidates without an interval (mask errors)
            // sort first and are always scored exactly.
            order.sort_unstable_by(|&a, &b| {
                let ea = intervals[a].map(|iv| iv.est).unwrap_or(f64::INFINITY);
                let eb = intervals[b].map(|iv| iv.est).unwrap_or(f64::INFINITY);
                eb.total_cmp(&ea)
            });
            let mut thr = threshold;
            // The `top_k` largest exact scores so far, ascending.
            let mut exact_top: Vec<f64> = Vec::with_capacity(top_k);
            for &i in &order {
                if exact_top.len() == top_k {
                    if let Some(iv) = intervals[i] {
                        if iv.hi < thr {
                            error_bound = error_bound.max(iv.error_bound());
                            scores[i] = Ok(iv.est);
                            pruned += 1;
                            continue;
                        }
                    }
                }
                let sc = self.influence(&preds[i]);
                if let Ok(v) = sc {
                    if !v.is_nan() {
                        let pos = exact_top.partition_point(|&x| x < v);
                        exact_top.insert(pos, v);
                        if exact_top.len() > top_k {
                            exact_top.remove(0);
                        }
                        if exact_top.len() == top_k {
                            thr = thr.max(exact_top[0]);
                        }
                    }
                }
                scores[i] = sc;
            }
        } else {
            // Parallel survivor scoring keeps the static threshold: the
            // workers would serialize on a shared dynamic one.
            let survivors: Vec<Predicate> = order.iter().map(|&i| preds[i].clone()).collect();
            let exact = self.influence_batch(&survivors, threads);
            for (&i, sc) in order.iter().zip(exact) {
                scores[i] = sc;
            }
        }
        for (i, iv) in intervals.iter().enumerate() {
            if !survives[i] {
                let iv = iv.expect("pruned candidates have intervals");
                error_bound = error_bound.max(iv.error_bound());
                scores[i] = Ok(iv.est);
                pruned += 1;
            }
        }
        self.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.bound_bits.fetch_max(error_bound.to_bits(), Ordering::Relaxed);
        PrunedBatch { scores, pruned, error_bound }
    }
}

/// Result of [`Scorer::influence_batch_pruned`]: per-candidate scores in
/// input order plus this batch's pruning statistics.
pub struct PrunedBatch {
    /// One score per input predicate: exact for survivors, the interval
    /// point estimate for pruned candidates.
    pub scores: Vec<Result<f64>>,
    /// Candidates pruned without exact scoring.
    pub pruned: u64,
    /// Worst distance between a pruned candidate's estimate and its
    /// interval edge (`0.0` when nothing was pruned).
    pub error_bound: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_agg::{Avg, Sum};
    use scorpion_table::{group_by, Clause, Field, Schema, TableBuilder};

    /// Builds the paper's running example (Tables 1 & 2).
    fn sensors() -> Table {
        let schema = Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"),
            Field::cont("voltage"),
            Field::cont("temp"),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        let rows: [(&str, &str, f64, f64); 9] = [
            ("11AM", "1", 2.64, 34.0),
            ("11AM", "2", 2.65, 35.0),
            ("11AM", "3", 2.63, 35.0),
            ("12PM", "1", 2.7, 35.0),
            ("12PM", "2", 2.7, 35.0),
            ("12PM", "3", 2.3, 100.0),
            ("1PM", "1", 2.7, 35.0),
            ("1PM", "2", 2.7, 35.0),
            ("1PM", "3", 2.3, 80.0),
        ];
        for (t, s, v, temp) in rows {
            b.push_row(vec![t.into(), s.into(), v.into(), temp.into()]).unwrap();
        }
        b.build()
    }

    fn paper_scorer(table: &Table, _c: f64) -> Scorer<'_> {
        let g = group_by(table, &[0]).unwrap();
        // α2 (12PM) and α3 (1PM) are outliers ("too high" → v = +1);
        // α1 (11AM) is the hold-out.
        Scorer::new(
            table,
            &Avg,
            3,
            vec![
                GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 },
                GroupSpec { rows: g.rows(2).to_vec(), error: 1.0 },
            ],
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 1.0 },
            false,
        )
        .unwrap()
    }

    #[test]
    fn paper_single_tuple_influences() {
        // §3.2: in g_α2 = {35, 35, 100}, removing T4 (35) changes AVG from
        // 56.6 to 67.5 → inf = −10.8; removing T6 (100) → +21.6.
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let deltas = s.outlier_tuple_deltas(0);
        assert!((deltas[0] - (56.0 + 2.0 / 3.0 - 67.5)).abs() < 1e-9);
        assert!((deltas[0] + 10.8333).abs() < 1e-3);
        assert!((deltas[2] - 21.6666).abs() < 1e-3);
        let infs = s.outlier_tuple_influences(0);
        assert!(infs[2] > infs[0]);
    }

    #[test]
    fn error_vector_flips_preference() {
        // §3.2: with v = <−1>, T4 becomes more influential than T6.
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        let s = Scorer::new(
            &t,
            &Avg,
            3,
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: -1.0 }],
            vec![],
            InfluenceParams { lambda: 1.0, c: 1.0 },
            false,
        )
        .unwrap();
        let infs = s.outlier_tuple_influences(0);
        assert!(infs[0] > 0.0); // T4: −(−10.8)
        assert!(infs[2] < 0.0); // T6: −21.6
        assert!(infs[0] > infs[2]);
    }

    #[test]
    fn predicate_influence_prefers_voltage_explanation() {
        // voltage < 2.4 selects exactly T6 and T9 — the planted anomaly.
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let bad_voltage = Predicate::conjunction([Clause::range(2, 0.0, 2.4)]).unwrap();
        let normal_voltage = Predicate::conjunction([Clause::range(2, 2.6, 3.0)]).unwrap();
        let inf_bad = s.influence(&bad_voltage).unwrap();
        let inf_norm = s.influence(&normal_voltage).unwrap();
        assert!(
            inf_bad > inf_norm,
            "low-voltage predicate should dominate: {inf_bad} vs {inf_norm}"
        );
        // The bad-voltage predicate does not touch the hold-out group, so
        // its influence is exactly λ·mean(Δ/n) = 0.5·mean(21.67, 15).
        let expect = 0.5 * (21.666_666 + 15.0) / 2.0;
        assert!((inf_bad - expect).abs() < 1e-3, "{inf_bad} vs {expect}");
    }

    #[test]
    fn holdout_penalty_applies() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        // Matches every sensor-3 row, including the hold-out group's.
        let sensor3 =
            Predicate::conjunction([Clause::in_set(1, [t.cat(1).unwrap().code_of("3").unwrap()])])
                .unwrap();
        let inf = s.influence(&sensor3).unwrap();
        // Outlier part identical to the voltage predicate, but the
        // hold-out group loses its 35° reading: avg 34.67 → 34.5,
        // penalty |Δ|/n = 0.1667.
        let expect = 0.5 * (21.666_666 + 15.0) / 2.0 - 0.5 * (34.666_666 - 34.5);
        assert!((inf - expect).abs() < 1e-3, "{inf} vs {expect}");
    }

    #[test]
    fn c_zero_ignores_cardinality() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        for c in [0.0, 0.5, 1.0] {
            let s = Scorer::new(
                &t,
                &Sum,
                3,
                vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
                vec![],
                InfluenceParams { lambda: 1.0, c },
                false,
            )
            .unwrap();
            let two_rows = Predicate::conjunction([Clause::range(3, 34.9, 35.1)]).unwrap();
            let inf = s.influence(&two_rows).unwrap();
            // Δ = 70 (two 35° readings), n = 2.
            let expect = 70.0 / 2f64.powf(c);
            assert!((inf - expect).abs() < 1e-9, "c={c}");
        }
    }

    #[test]
    fn empty_selection_has_zero_influence() {
        let t = sensors();
        let s = paper_scorer(&t, 0.0);
        let nothing = Predicate::conjunction([Clause::range(3, 1000.0, 2000.0)]).unwrap();
        assert_eq!(s.influence(&nothing).unwrap(), 0.0);
    }

    #[test]
    fn blackbox_matches_incremental() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        let mk = |blackbox: bool| {
            Scorer::new(
                &t,
                &Avg,
                3,
                vec![
                    GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 },
                    GroupSpec { rows: g.rows(2).to_vec(), error: 1.0 },
                ],
                vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
                InfluenceParams { lambda: 0.5, c: 0.7 },
                blackbox,
            )
            .unwrap()
        };
        let fast = mk(false);
        let slow = mk(true);
        assert!(fast.is_incremental());
        assert!(!slow.is_incremental());
        for p in [
            Predicate::conjunction([Clause::range(2, 0.0, 2.4)]).unwrap(),
            Predicate::conjunction([Clause::range(3, 30.0, 90.0)]).unwrap(),
            Predicate::all(),
        ] {
            let a = fast.influence(&p).unwrap();
            let b = slow.influence(&p).unwrap();
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(fast.scorer_calls(), 3);
    }

    #[test]
    fn removing_entire_group_is_total() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let everything = Predicate::all();
        let inf = s.influence(&everything).unwrap();
        assert!(inf.is_finite());
    }

    #[test]
    fn max_tuple_influence_finds_t6() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let all = Predicate::all();
        let m = s.max_tuple_influence(&all).unwrap();
        assert!((m - 21.6666).abs() < 1e-3);
        // Restricted to normal temperatures the max drops.
        let normals = Predicate::conjunction([Clause::range(3, 0.0, 50.0)]).unwrap();
        assert!(s.max_tuple_influence(&normals).unwrap() < 0.0);
    }

    #[test]
    fn influence_from_states_matches_exact_for_uniform_partition() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let inc = s.incremental_agg().unwrap();
        // Partition = exactly the 100° tuple in group 0, nothing in group
        // 1; nothing in the hold-out.
        let est = s
            .influence_from_states(
                &[(1.0, inc.state_one(100.0)), (0.0, AggState::zero(2))],
                &[(0.0, AggState::zero(2))],
            )
            .unwrap();
        let exact =
            s.influence(&Predicate::conjunction([Clause::range(3, 99.0, 101.0)]).unwrap()).unwrap();
        assert!((est - exact).abs() < 1e-9, "{est} vs {exact}");
    }

    #[test]
    fn influence_batch_matches_sequential() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        let preds: Vec<Predicate> = (0..20)
            .map(|i| {
                let lo = 2.0 + i as f64 * 0.05;
                Predicate::conjunction([Clause::range(2, lo, lo + 0.3)]).unwrap()
            })
            .collect();
        let serial: Vec<f64> =
            s.influence_batch(&preds, 1).into_iter().map(|r| r.unwrap()).collect();
        let parallel: Vec<f64> =
            s.influence_batch(&preds, 4).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn mask_path_matches_rowwise_oracle_bit_exactly() {
        let t = sensors();
        for c in [0.0, 0.3, 1.0] {
            let s = paper_scorer(&t, c).with_params(InfluenceParams { lambda: 0.5, c }).unwrap();
            let code3 = t.cat(1).unwrap().code_of("3").unwrap();
            for p in [
                Predicate::all(),
                Predicate::conjunction([Clause::range(2, 0.0, 2.4)]).unwrap(),
                Predicate::conjunction([Clause::in_set(1, [code3])]).unwrap(),
                Predicate::conjunction([Clause::range(2, 0.0, 2.4), Clause::in_set(1, [code3])])
                    .unwrap(),
                Predicate::conjunction([Clause::range(3, 1000.0, 2000.0)]).unwrap(),
            ] {
                let mask = s.influence(&p).unwrap();
                let oracle = s.influence_rowwise(&p).unwrap();
                assert!(
                    mask.to_bits() == oracle.to_bits(),
                    "c={c}: mask {mask} != oracle {oracle} for {}",
                    p.display(&t)
                );
            }
        }
    }

    #[test]
    fn batch_evaluates_each_distinct_clause_once() {
        let t = sensors();
        let s = paper_scorer(&t, 1.0);
        // 8 candidates built from 4 distinct voltage clauses and 2
        // distinct temp clauses.
        let volts: Vec<Clause> =
            (0..4).map(|i| Clause::range(2, 2.0 + i as f64 * 0.1, 2.8)).collect();
        let temps = [Clause::range(3, 0.0, 50.0), Clause::range(3, 50.0, 200.0)];
        let preds: Vec<Predicate> = volts
            .iter()
            .flat_map(|v| {
                temps.iter().map(|t| Predicate::conjunction([v.clone(), t.clone()]).unwrap())
            })
            .collect();
        for r in s.influence_batch(&preds, 4) {
            r.unwrap();
        }
        assert_eq!(s.mask_cache_entries(), 6, "one mask per distinct clause");
        let hits = s.mask_cache_hits();
        assert!(hits > 0, "shared clauses must hit the cache");
        // Re-scoring the same batch is pure cache traffic.
        for r in s.influence_batch(&preds, 1) {
            r.unwrap();
        }
        assert_eq!(s.mask_cache_entries(), 6);
        assert!(s.mask_cache_hits() > hits);
    }

    #[test]
    fn unsorted_group_rows_are_normalized() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        let mut shuffled = g.rows(1).to_vec();
        shuffled.reverse();
        let s = Scorer::new(
            &t,
            &Avg,
            3,
            vec![GroupSpec { rows: shuffled, error: 1.0 }],
            vec![],
            InfluenceParams { lambda: 1.0, c: 1.0 },
            false,
        )
        .unwrap();
        assert_eq!(s.outlier_rows(0), g.rows(1), "rows normalize ascending");
        let p = Predicate::conjunction([Clause::range(2, 0.0, 2.4)]).unwrap();
        assert_eq!(s.influence(&p).unwrap().to_bits(), s.influence_rowwise(&p).unwrap().to_bits());
    }

    #[test]
    fn influence_cache_evicts_lru_past_bound() {
        let t = sensors();
        let cache = Arc::new(InfluenceCache::with_capacity_bound(16));
        assert_eq!(cache.capacity(), 16);
        let s = paper_scorer(&t, 1.0).with_cache(cache.clone());
        let preds: Vec<Predicate> = (0..100)
            .map(|i| {
                let lo = i as f64 * 0.01;
                Predicate::conjunction([Clause::range(2, lo, lo + 0.5)]).unwrap()
            })
            .collect();
        for p in &preds {
            s.influence(p).unwrap();
        }
        assert!(cache.len() <= 16, "cache holds {} > bound", cache.len());
        // Every insert past a full shard evicts exactly one entry.
        assert_eq!(cache.evictions() as usize, preds.len() - cache.len());
        // The most recently inserted predicate is still resident.
        let hits = s.cache_hits();
        s.influence(preds.last().unwrap()).unwrap();
        assert_eq!(s.cache_hits(), hits + 1);
    }

    #[test]
    fn influence_cache_keeps_recently_touched_entries() {
        let t = sensors();
        let cache = Arc::new(InfluenceCache::with_capacity_bound(32));
        let s = paper_scorer(&t, 1.0).with_cache(cache.clone());
        let hot = Predicate::conjunction([Clause::range(2, 0.0, 2.4)]).unwrap();
        s.influence(&hot).unwrap();
        // Flood with distinct predicates, re-touching `hot` after each
        // insert: it is always MRU in its shard, so LRU never picks it.
        for i in 0..200 {
            let lo = 2.0 + i as f64 * 0.003;
            s.influence(&Predicate::conjunction([Clause::range(2, lo, lo + 0.1)]).unwrap())
                .unwrap();
            s.influence(&hot).unwrap();
        }
        assert!(cache.evictions() > 0, "flood must overflow the bound");
        let calls = s.scorer_calls();
        s.influence(&hot).unwrap();
        assert_eq!(s.scorer_calls(), calls, "hot predicate was evicted despite recency");
    }

    #[test]
    fn influence_cache_clear_keeps_eviction_counter() {
        let t = sensors();
        let cache = Arc::new(InfluenceCache::with_capacity_bound(16));
        let s = paper_scorer(&t, 1.0).with_cache(cache.clone());
        for i in 0..64 {
            let lo = i as f64 * 0.02;
            s.influence(&Predicate::conjunction([Clause::range(2, lo, lo + 0.5)]).unwrap())
                .unwrap();
        }
        let evicted = cache.evictions();
        assert!(evicted > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), evicted);
    }

    #[test]
    fn validation_errors() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        assert!(matches!(
            Scorer::new(&t, &Avg, 3, vec![], vec![], InfluenceParams::default(), false),
            Err(ScorpionError::NoOutliers)
        ));
        let spec = vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }];
        assert!(matches!(
            Scorer::new(
                &t,
                &Avg,
                3,
                spec.clone(),
                vec![],
                InfluenceParams { lambda: 2.0, c: 1.0 },
                false
            ),
            Err(ScorpionError::BadConfig(_))
        ));
        assert!(matches!(
            Scorer::new(&t, &Avg, 3, spec, vec![], InfluenceParams { lambda: 0.5, c: -1.0 }, false),
            Err(ScorpionError::BadConfig(_))
        ));
    }
}

//! Result types: scored predicates, partition statistics, diagnostics.

use scorpion_agg::Aggregate;
use scorpion_obs::PhaseTiming;
use scorpion_table::{Grouping, Predicate, Table};
use std::time::Duration;

/// Cached per-group statistics of a partition, recorded by the DT
/// partitioner for the Merger's cached-tuple influence approximation
/// (§6.3): the partition's cardinality `N` in the group and the
/// aggregate-attribute value of the tuple whose influence is closest to
/// the partition's mean influence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStat {
    /// Number of the group's tuples inside the partition.
    pub n: f64,
    /// Aggregate-attribute value of the cached (mean-influence) tuple.
    pub rep_value: f64,
}

/// Per-partition statistics across all labeled groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionStats {
    /// One entry per outlier group, in Scorer order.
    pub outlier: Vec<GroupStat>,
    /// One entry per hold-out group, in Scorer order.
    pub holdout: Vec<GroupStat>,
}

/// A predicate together with its (exact or estimated) influence.
#[derive(Debug, Clone)]
pub struct ScoredPredicate {
    /// The predicate.
    pub predicate: Predicate,
    /// Influence score; exact unless stated otherwise by the producing
    /// stage.
    pub influence: f64,
    /// Cached statistics for approximation-based merging, if available.
    pub stats: Option<PartitionStats>,
}

impl ScoredPredicate {
    /// A scored predicate without cached statistics.
    pub fn new(predicate: Predicate, influence: f64) -> Self {
        ScoredPredicate { predicate, influence, stats: None }
    }
}

/// Execution metadata of one Scorpion run.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Which algorithm produced the result (`"naive"`, `"dt"`, `"mc"`).
    pub algorithm: &'static str,
    /// Process-wide trace id of the producing request/run/slide (0 when
    /// the surface did not assign one). The same id appears in the
    /// server's `x-scorpion-trace-id` response header and in the flight
    /// recorder's event for this run.
    pub trace_id: u64,
    /// Wall-clock runtime of the search.
    pub runtime: Duration,
    /// Number of Scorer influence evaluations (cache hits excluded).
    pub scorer_calls: u64,
    /// Influence evaluations answered from a shared
    /// [`crate::scorer::InfluenceCache`] without matcher work.
    pub cache_hits: u64,
    /// Predicates this run's own stores evicted (LRU) from the plan's
    /// shared [`crate::scorer::InfluenceCache`] — attribution stays
    /// per-run even when concurrent runs share the cache.
    pub cache_evictions: u64,
    /// Clause-mask lookups this run answered from the plan's shared
    /// [`scorpion_table::ClauseMaskCache`] — each hit skips one
    /// full-column kernel pass.
    pub mask_cache_hits: u64,
    /// Distinct clause masks resident in the plan's cache after the
    /// run.
    pub mask_cache_entries: u64,
    /// Number of candidate predicates generated.
    pub candidates: u64,
    /// Candidates discarded by the approximate influence search's
    /// interval pruning before exact scoring (0 in exact mode).
    pub candidates_pruned: u64,
    /// Worst-case distance between a pruned candidate's estimated and
    /// true influence, from the interval the pruning decision used.
    /// `Some` whenever approximate mode was active (0.0 when nothing was
    /// pruned — every returned score is then exact); `None` in exact
    /// mode. Reported predicate scores are always exact; the bound
    /// quantifies only what pruning could have misjudged *below* the
    /// returned ranking.
    pub approx_error_bound: Option<f64>,
    /// Why approximate mode fell back to exact scoring (e.g. a
    /// black-box aggregate with no closed-form interval), when it did.
    pub approx_fallback: Option<&'static str>,
    /// Number of partitions (leaves / units) before merging.
    pub partitions: usize,
    /// True when an anytime search exhausted its budget before completing.
    pub budget_exhausted: bool,
    /// Raw rows resident in the producing sliding window (0 for offline
    /// runs). With the stream compaction tier this stays O(chunks) on
    /// quiet streams while logical rows grow with the window.
    pub resident_rows: u64,
    /// Approximate bytes resident in the producing sliding window
    /// (rows + partials + sketches + masks; 0 for offline runs).
    pub resident_bytes: u64,
    /// Per-phase wall-clock attribution of `runtime` (prepare-side
    /// phases are charged to the first run, like `scorer_calls`).
    /// Phases overlap hierarchically — e.g. `dt.split` time is inside
    /// `dt.grow` — so the entries do not sum to `runtime`.
    pub phases: Vec<PhaseTiming>,
}

/// The output of a Scorpion run: predicates ranked by influence, most
/// influential first, plus diagnostics.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Ranked predicates (best first). Non-empty on success.
    pub predicates: Vec<ScoredPredicate>,
    /// Execution metadata.
    pub diagnostics: Diagnostics,
}

impl Explanation {
    /// The most influential predicate.
    pub fn best(&self) -> &ScoredPredicate {
        &self.predicates[0]
    }

    /// Renders the top-`k` predicates for human consumption.
    pub fn render(&self, table: &Table, k: usize) -> String {
        let mut out = String::new();
        for (i, sp) in self.predicates.iter().take(k).enumerate() {
            out.push_str(&format!(
                "{:>2}. inf={:+.4}  {}\n",
                i + 1,
                sp.influence,
                sp.predicate.display(table)
            ));
        }
        out
    }

    /// The §4.1 UI preview: per result group, the aggregate value before
    /// and after deleting the best predicate's tuples ("users can click
    /// through the results and plot the updated output with the outlier
    /// input tuples removed"). Returns `(before, after)` per group.
    pub fn preview(
        &self,
        table: &Table,
        grouping: &Grouping,
        agg: &dyn Aggregate,
        agg_attr: usize,
    ) -> scorpion_table::Result<Vec<(f64, f64)>> {
        let mask = self.best().predicate.mask_uncached(table)?;
        let vals = table.num(agg_attr)?;
        let mut out = Vec::with_capacity(grouping.len());
        let mut scratch = Vec::new();
        for g in 0..grouping.len() {
            let rows = grouping.rows(g);
            scratch.clear();
            scratch.extend(rows.iter().map(|&r| vals[r as usize]));
            let before = agg.compute(&scratch);
            scratch.clear();
            scratch.extend(rows.iter().filter(|&&r| !mask.contains(r)).map(|&r| vals[r as usize]));
            let after = agg.compute(&scratch);
            out.push((before, after));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::{Clause, Field, Schema, TableBuilder, Value};

    #[test]
    fn explanation_best_and_render() {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::from(1.0)]).unwrap();
        let t = b.build();
        let p1 = Predicate::conjunction([Clause::range(0, 0.0, 1.0)]).unwrap();
        let p2 = Predicate::all();
        let e = Explanation {
            predicates: vec![ScoredPredicate::new(p1.clone(), 2.0), ScoredPredicate::new(p2, 1.0)],
            diagnostics: Diagnostics { algorithm: "dt", ..Default::default() },
        };
        assert_eq!(e.best().influence, 2.0);
        let s = e.render(&t, 2);
        assert!(s.contains("x in"), "{s}");
        assert!(s.contains("TRUE"), "{s}");
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn scored_predicate_has_no_stats_by_default() {
        let sp = ScoredPredicate::new(Predicate::all(), 0.0);
        assert!(sp.stats.is_none());
    }

    #[test]
    fn preview_shows_before_and_after() {
        use scorpion_agg::Avg;
        let schema = Schema::new(vec![Field::disc("g"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for (g, v) in [("a", 10.0), ("a", 90.0), ("b", 10.0)] {
            b.push_row(vec![Value::from(g), Value::from(v)]).unwrap();
        }
        let t = b.build();
        let grouping = scorpion_table::group_by(&t, &[0]).unwrap();
        let hot = Predicate::conjunction([Clause::range(1, 50.0, 100.0)]).unwrap();
        let e = Explanation {
            predicates: vec![ScoredPredicate::new(hot, 1.0)],
            diagnostics: Diagnostics::default(),
        };
        let pv = e.preview(&t, &grouping, &Avg, 1).unwrap();
        assert_eq!(pv.len(), 2);
        assert!((pv[0].0 - 50.0).abs() < 1e-9); // before: avg(10, 90)
        assert!((pv[0].1 - 10.0).abs() < 1e-9); // after: avg(10)
        assert_eq!(pv[1], (10.0, 10.0)); // group b untouched
    }
}

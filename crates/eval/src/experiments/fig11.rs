//! Figure 11: NAIVE's best-so-far accuracy as execution time increases
//! on SYNTH-2D-Hard, for `c ∈ {0, 0.1, 0.5}`.

use crate::experiments::Scale;
use crate::harness::SynthRun;
use crate::report::{f, Report};
use scorpion_core::naive::naive_search;
use scorpion_core::{InfluenceParams, NaiveConfig};
use scorpion_data::synth::SynthConfig;
use scorpion_table::domains_of;
use std::time::Duration;

/// Regenerates Figure 11: one trace row per best-so-far improvement.
pub fn run(scale: &Scale) -> Vec<Report> {
    let run = SynthRun::new(SynthConfig::hard(2).with_tuples_per_group(scale.tuples_per_group));
    let domains = domains_of(&run.ds.table).expect("domains");
    let mut r = Report::new(
        "Figure 11 — NAIVE best-so-far accuracy vs wall-clock time, \
         SYNTH-2D-Hard",
        &["c", "elapsed_s", "influence", "F_inner", "F_outer"],
    );
    for &c in &[0.0, 0.1, 0.5] {
        let scorer = run.query().scorer(InfluenceParams { lambda: 0.5, c }, false).expect("scorer");
        let cfg = NaiveConfig {
            keep_trace: true,
            time_budget: Some(scale.naive_budget.max(Duration::from_secs(30))),
            ..NaiveConfig::default()
        };
        let out = naive_search(&scorer, &run.ds.dim_attrs(), &domains, &cfg).expect("naive");
        for tp in &out.trace {
            let inner = run.accuracy(&tp.predicate, true);
            let outer = run.accuracy(&tp.predicate, false);
            r.push(vec![
                f(c, 1),
                f(tp.elapsed.as_secs_f64(), 3),
                f(tp.influence, 3),
                f(inner.f_score, 3),
                f(outer.f_score, 3),
            ]);
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_exist_and_are_time_ordered() {
        let r = &run(&Scale::quick())[0];
        assert!(!r.rows.is_empty());
        for c in ["0.0", "0.1", "0.5"] {
            let times: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row[0] == c)
                .map(|row| row[1].parse().unwrap())
                .collect();
            assert!(!times.is_empty(), "no trace for c = {c}");
            for w in times.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }
}

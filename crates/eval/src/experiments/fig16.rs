//! Figure 16: DT runtime with and without cross-`c` caching (§8.3.3).
//!
//! The session executes with decreasing `c` (0.5 → 0); the cached variant
//! reuses the partitioning and warm-starts the Merger from the previous
//! (higher-`c`) run.

use crate::experiments::Scale;
use crate::harness::{dt, SynthRun};
use crate::report::{f, Report};
use scorpion_core::session::ScorpionSession;
use scorpion_data::synth::SynthConfig;

const C_DESC: [f64; 6] = [0.5, 0.4, 0.3, 0.2, 0.1, 0.0];

/// Regenerates Figure 16.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "Figure 16 — DT cost (s) per c, cached vs uncached (c run in \
         decreasing order)",
        &["dims", "difficulty", "c", "cached_s", "uncached_s"],
    );
    for dims in 3..=scale.max_dims.max(3) {
        for (diff, base) in [("Easy", SynthConfig::easy(dims)), ("Hard", SynthConfig::hard(dims))] {
            let run = SynthRun::new(base.with_tuples_per_group(scale.tuples_per_group));
            let cached = ScorpionSession::new(run.request(dt(), 0.5)).expect("session");
            for &c in &C_DESC {
                let warm = cached.run_with_c(c).expect("cached run");
                // Uncached: a fresh session per c (preparation redone).
                let cold_session = ScorpionSession::new(run.request(dt(), 0.5)).expect("session");
                let cold = cold_session.run_with_c(c).expect("uncached run");
                r.push(vec![
                    dims.to_string(),
                    diff.into(),
                    f(c, 1),
                    f(warm.diagnostics.runtime.as_secs_f64(), 3),
                    f(cold.diagnostics.runtime.as_secs_f64(), 3),
                ]);
            }
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_wins_after_the_first_c() {
        let r = &run(&Scale::quick())[0];
        // Skip each dataset's first (cache-cold) row; afterwards the
        // cached runtime should beat the uncached one on average.
        let mut cached_total = 0.0;
        let mut uncached_total = 0.0;
        for (i, row) in r.rows.iter().enumerate() {
            if i % C_DESC.len() == 0 {
                continue;
            }
            cached_total += row[3].parse::<f64>().unwrap();
            uncached_total += row[4].parse::<f64>().unwrap();
        }
        assert!(
            cached_total < uncached_total,
            "cached {cached_total} vs uncached {uncached_total}"
        );
    }
}

//! Figure 8: the 2-D synthetic dataset visualization — per-group
//! aggregates the user would see, and the composition of an outlier
//! versus a hold-out input group (normal / medium / high tuples).

use crate::experiments::Scale;
use crate::harness::SynthRun;
use crate::report::{f, Report};
use scorpion_data::synth::SynthConfig;
use scorpion_table::aggregate_groups;

/// Regenerates Figure 8's panels for the paper's example geometry
/// (µ = 90, outer cube \[20,80\]², inner cube \[40,60\]²).
pub fn run(scale: &Scale) -> Vec<Report> {
    let cfg = SynthConfig {
        mu: 90.0,
        tuples_per_group: scale.tuples_per_group,
        cubes: Some((vec![(20.0, 80.0), (20.0, 80.0)], vec![(40.0, 60.0), (40.0, 60.0)])),
        ..SynthConfig::easy(2)
    };
    let run = SynthRun::new(cfg);
    let sums =
        aggregate_groups(&run.ds.table, &run.grouping, run.ds.agg_attr(), |v| v.iter().sum())
            .expect("sum");

    let mut top = Report::new(
        "Figure 8 (top) — SUM(Av) per group; outlier groups dominate",
        &["group", "sum_av", "label"],
    );
    #[allow(clippy::needless_range_loop)]
    for i in 0..run.grouping.len() {
        let label = if run.ds.outlier_groups.contains(&i) { "outlier" } else { "hold-out" };
        top.push(vec![run.grouping.display_key(&run.ds.table, i), f(sums[i], 0), label.into()]);
    }

    let mut bottom = Report::new(
        "Figure 8 (bottom) — tuple composition of one outlier and one \
         hold-out input group",
        &["group", "normal", "medium (outer cube)", "high (inner cube)"],
    );
    let inner: std::collections::HashSet<u32> = run.ds.inner_rows.iter().copied().collect();
    let outer: std::collections::HashSet<u32> = run.ds.outer_rows.iter().copied().collect();
    for &g in [run.ds.outlier_groups[0], run.ds.holdout_groups[0]].iter() {
        let rows = run.grouping.rows(g);
        let hi = rows.iter().filter(|r| inner.contains(r)).count();
        let med = rows.iter().filter(|r| outer.contains(r)).count() - hi;
        let norm = rows.len() - med - hi;
        bottom.push(vec![
            run.grouping.display_key(&run.ds.table, g),
            norm.to_string(),
            med.to_string(),
            hi.to_string(),
        ]);
    }
    vec![top, bottom]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_groups_have_larger_sums_and_cube_tuples() {
        let reports = run(&Scale::quick());
        let top = &reports[0];
        let sum = |label: &str| -> f64 {
            top.rows
                .iter()
                .filter(|r| r[2] == label)
                .map(|r| r[1].parse::<f64>().unwrap())
                .sum::<f64>()
        };
        assert!(sum("outlier") > 2.0 * sum("hold-out"));
        let bottom = &reports[1];
        assert_eq!(bottom.rows.len(), 2);
        // Outlier group row has non-zero medium and high counts.
        assert!(bottom.rows[0][2].parse::<usize>().unwrap() > 0);
        assert!(bottom.rows[0][3].parse::<usize>().unwrap() > 0);
        // Hold-out group has none.
        assert_eq!(bottom.rows[1][2], "0");
        assert_eq!(bottom.rows[1][3], "0");
    }
}

//! Figure 15: runtime as the dataset grows from 500 to 10,000 tuples per
//! group (Easy, c = 0.1, 2–4 dimensions).

use crate::experiments::Scale;
use crate::harness::{dt, mc, naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_data::synth::SynthConfig;

/// Regenerates Figure 15.
pub fn run(scale: &Scale) -> Vec<Report> {
    let c = 0.1;
    let mut r = Report::new(
        "Figure 15 — runtime (s) vs tuples per group (Easy, c = 0.1)",
        &["dims", "tuples_per_group", "algorithm", "seconds"],
    );
    for dims in 2..=scale.max_dims {
        for &n in scale.scale_sweep {
            let run = SynthRun::new(SynthConfig::easy(dims).with_tuples_per_group(n));
            for (aname, algo) in [
                ("dt", dt()),
                ("mc", mc()),
                ("naive", naive_with_budget(scale.naive_budget, false)),
            ] {
                let ex = run.run(algo, c);
                r.push(vec![
                    dims.to_string(),
                    n.to_string(),
                    aname.into(),
                    f(ex.diagnostics.runtime.as_secs_f64(), 3),
                ]);
            }
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_rows_per_size() {
        let scale = Scale { max_dims: 2, ..Scale::quick() };
        let r = &run(&scale)[0];
        assert_eq!(r.rows.len(), scale.scale_sweep.len() * 3);
    }
}

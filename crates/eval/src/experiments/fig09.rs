//! Figure 9: the optimal NAIVE predicate on SYNTH-2D-Hard for each `c` —
//! from the whole outer cube at `c = 0` to slivers of the inner cube at
//! `c = 0.5`.

use crate::experiments::{Scale, C_FIG9};
use crate::harness::{naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_data::synth::SynthConfig;
use std::time::Duration;

/// Runs NAIVE to completion on SYNTH-2D-Hard per `c` and reports the
/// winning predicate boxes.
pub fn run(scale: &Scale) -> Vec<Report> {
    let run = SynthRun::new(SynthConfig::hard(2).with_tuples_per_group(scale.tuples_per_group));
    let mut r = Report::new(
        format!(
            "Figure 9 — optimal NAIVE predicates, SYNTH-2D-Hard (outer cube \
             A1 in [{:.0},{:.0}) A2 in [{:.0},{:.0}); inner cube A1 in \
             [{:.0},{:.0}) A2 in [{:.0},{:.0}))",
            run.ds.outer_cube[0].0,
            run.ds.outer_cube[0].1,
            run.ds.outer_cube[1].0,
            run.ds.outer_cube[1].1,
            run.ds.inner_cube[0].0,
            run.ds.inner_cube[0].1,
            run.ds.inner_cube[1].0,
            run.ds.inner_cube[1].1,
        ),
        &["c", "predicate", "selected", "P_outer", "R_outer", "P_inner", "R_inner"],
    );
    for &c in &C_FIG9 {
        // 2-D enumeration completes quickly; give it a generous budget.
        let budget = scale.naive_budget.max(Duration::from_secs(30));
        let ex = run.run(naive_with_budget(budget, false), c);
        let best = &ex.best().predicate;
        let outer = run.accuracy(best, false);
        let inner = run.accuracy(best, true);
        let n = best.select(&run.ds.table, run.outlier_rows()).unwrap().len();
        r.push(vec![
            f(c, 2),
            best.display(&run.ds.table),
            n.to_string(),
            f(outer.precision, 2),
            f(outer.recall, 2),
            f(inner.precision, 2),
            f(inner.recall, 2),
        ]);
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_shrinks_as_c_grows() {
        let reports = run(&Scale::quick());
        let r = &reports[0];
        assert_eq!(r.rows.len(), C_FIG9.len());
        let selected: Vec<usize> = r.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        // c = 0 selects the most tuples; c = 0.5 the fewest.
        assert!(selected[0] >= *selected.last().unwrap(), "selected counts {selected:?}");
        // c = 0 recalls most of the outer cube.
        let recall0: f64 = r.rows[0][4].parse().unwrap();
        assert!(recall0 > 0.5, "outer recall at c=0 is {recall0}");
    }
}

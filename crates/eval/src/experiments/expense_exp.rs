//! §8.4 EXPENSE workload: the campaign-finance explanation.
//!
//! The paper reports that MC returns `recipient_st = 'DC' ∧ recipient_nm
//! = 'GMMB INC.' ∧ file_num = 800316 ∧ disb_desc = 'MEDIA BUY'` for
//! `c ∈ [0.2, 1]` (F ≈ 0.6 against the >$1.5M ground truth, due to low
//! recall), and that below `c ≈ 0.1` the `file_num` clause is dropped,
//! matching all $1M+ expenditures.

use crate::experiments::Scale;
use crate::harness::ExpenseRun;
use crate::report::{f, Report};
use scorpion_data::expense::ExpenseConfig;

const C_VALUES: [f64; 6] = [1.0, 0.5, 0.2, 0.1, 0.05, 0.0];

/// Runs the EXPENSE workload across `c`.
pub fn run(scale: &Scale) -> Vec<Report> {
    let run =
        ExpenseRun::new(ExpenseConfig { days: scale.expense_days, ..ExpenseConfig::default() });
    let mut r = Report::new(
        "§8.4 EXPENSE — MC explanations per c (ground truth: expenses \
         > $1.5M)",
        &["c", "predicate", "selected", "avg_amount", "precision", "recall", "f_score"],
    );
    let amounts = run.ds.table.num(run.ds.agg_attr()).expect("disb_amt");
    for &c in &C_VALUES {
        let ex = run.run_mc(c);
        let best = &ex.best().predicate;
        let acc = run.accuracy(best);
        let selected = best.select(&run.ds.table, run_outlier_rows(&run)).unwrap();
        let avg = if selected.is_empty() {
            0.0
        } else {
            selected.iter().map(|&x| amounts[x as usize]).sum::<f64>() / selected.len() as f64
        };
        r.push(vec![
            f(c, 2),
            best.display(&run.ds.table),
            selected.len().to_string(),
            f(avg, 0),
            f(acc.precision, 3),
            f(acc.recall, 3),
            f(acc.f_score, 3),
        ]);
    }
    vec![r]
}

fn run_outlier_rows(run: &ExpenseRun) -> &[u32] {
    // Union of the outlier days' rows (g_O).
    run.outlier_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmmb_explanation_is_found() {
        let r = &run(&Scale::quick())[0];
        assert_eq!(r.rows.len(), C_VALUES.len());
        // At some c, the predicate should name GMMB and score well.
        let hits = r.rows.iter().filter(|row| row[1].contains("GMMB")).count();
        assert!(hits > 0, "no GMMB predicate found: {:?}", r.rows);
        let best_f = r.rows.iter().map(|row| row[6].parse::<f64>().unwrap()).fold(0.0, f64::max);
        assert!(best_f > 0.5, "best F {best_f}");
    }
}

//! Figure 14: runtime of DT / MC / NAIVE as dimensionality grows (Easy
//! datasets). NAIVE reports its convergence time — "the earliest time
//! that NAIVE converges on the predicate returned when the algorithm
//! terminates".

use crate::experiments::{Scale, C_GRID};
use crate::harness::{dt, mc, naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_core::naive::naive_search;
use scorpion_core::InfluenceParams;
use scorpion_data::synth::SynthConfig;
use scorpion_table::domains_of;

/// Regenerates Figure 14.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "Figure 14 — runtime (s) vs c as dimensionality grows (Easy)",
        &["dims", "algorithm", "c", "seconds", "note"],
    );
    for dims in 2..=scale.max_dims {
        let run =
            SynthRun::new(SynthConfig::easy(dims).with_tuples_per_group(scale.tuples_per_group));
        let domains = domains_of(&run.ds.table).expect("domains");
        for &c in &C_GRID {
            for (aname, algo) in [("dt", dt()), ("mc", mc())] {
                let ex = run.run(algo, c);
                r.push(vec![
                    dims.to_string(),
                    aname.into(),
                    f(c, 2),
                    f(ex.diagnostics.runtime.as_secs_f64(), 3),
                    String::new(),
                ]);
            }
            // NAIVE convergence time under the anytime budget.
            let scorer =
                run.query().scorer(InfluenceParams { lambda: 0.5, c }, false).expect("scorer");
            let ncfg = match naive_with_budget(scale.naive_budget, false) {
                scorpion_core::Algorithm::Naive(n) => n,
                _ => unreachable!(),
            };
            let out = naive_search(&scorer, &run.ds.dim_attrs(), &domains, &ncfg).expect("naive");
            let note = if out.completed { "completed" } else { "budget hit" };
            r.push(vec![
                dims.to_string(),
                "naive".into(),
                f(c, 2),
                f(out.converged_at.as_secs_f64().max(1e-3), 3),
                note.into(),
            ]);
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_and_mc_are_faster_than_naive_budget() {
        let scale = Scale { max_dims: 2, ..Scale::quick() };
        let r = &run(&scale)[0];
        let secs = |alg: &str| -> Vec<f64> {
            r.rows.iter().filter(|row| row[1] == alg).map(|row| row[3].parse().unwrap()).collect()
        };
        assert_eq!(secs("dt").len(), C_GRID.len());
        assert_eq!(secs("mc").len(), C_GRID.len());
        assert_eq!(secs("naive").len(), C_GRID.len());
        for v in secs("dt").iter().chain(secs("mc").iter()) {
            assert!(*v >= 0.0);
        }
    }
}

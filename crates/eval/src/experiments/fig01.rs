//! Figure 1: mean and standard deviation of temperature readings per
//! hour over the (simulated) Intel sensor dataset — the visualization
//! whose outlier regions motivate the paper.

use crate::experiments::Scale;
use crate::harness::IntelRun;
use crate::report::{f, Report};
use scorpion_data::intel::IntelConfig;
use scorpion_table::aggregate_groups;

/// Regenerates the two series of Figure 1.
pub fn run(scale: &Scale) -> Vec<Report> {
    let run = IntelRun::new(IntelConfig { hours: scale.intel_hours, ..IntelConfig::workload1() });
    let t = &run.ds.table;
    let g = &run.grouping;
    let means = aggregate_groups(t, g, run.ds.agg_attr(), |v| {
        v.iter().sum::<f64>() / v.len().max(1) as f64
    })
    .expect("avg");
    let sds = aggregate_groups(t, g, run.ds.agg_attr(), |v| {
        let n = v.len().max(1) as f64;
        let m = v.iter().sum::<f64>() / n;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n).sqrt()
    })
    .expect("stddev");

    let mut r = Report::new(
        "Figure 1 — AVG(temp) and STDDEV(temp) per hour (INTEL sim); the \
         failure window is the paper's outlier region",
        &["hour", "avg_temp", "stddev_temp", "label"],
    );
    for i in 0..g.len() {
        let label = if run.ds.outlier_hours.contains(&i) {
            "outlier"
        } else if run.ds.holdout_hours.contains(&i) {
            "hold-out"
        } else {
            ""
        };
        r.push(vec![g.display_key(t, i), f(means[i], 2), f(sds[i], 2), label.into()]);
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_hours_show_elevated_stddev() {
        let reports = run(&Scale::quick());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        let sd = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        let outlier_sd: Vec<f64> =
            r.rows.iter().filter(|row| row[3] == "outlier").map(sd).collect();
        let normal_sd: Vec<f64> =
            r.rows.iter().filter(|row| row[3] == "hold-out").map(sd).collect();
        assert!(!outlier_sd.is_empty() && !normal_sd.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&outlier_sd) > 3.0 * avg(&normal_sd));
    }
}

//! §8.4 INTEL workloads: the real-world sensor-failure explanations.
//!
//! Workload 1 (dying sensor): Scorpion should return `sensorid = 15`,
//! refining with light/voltage clauses as `c → 1`. Workload 2 (battery
//! drain): `light ∈ [283, 354] ∧ sensorid = 18` at `c = 1`,
//! `sensorid = 18` at lower `c`.

use crate::experiments::Scale;
use crate::harness::IntelRun;
use crate::report::{f, Report};
use scorpion_data::intel::IntelConfig;

const C_VALUES: [f64; 3] = [1.0, 0.5, 0.1];

/// Runs both INTEL workloads across `c`.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "§8.4 INTEL — DT explanations per workload and c (ground truth: \
         the failing sensor's anomalous readings)",
        &["workload", "c", "predicate", "precision", "recall", "f_score"],
    );
    for (name, cfg) in [
        ("1: dying sensor", IntelConfig { hours: scale.intel_hours, ..IntelConfig::workload1() }),
        ("2: battery drain", IntelConfig { hours: scale.intel_hours, ..IntelConfig::workload2() }),
    ] {
        let run = IntelRun::new(cfg);
        for &c in &C_VALUES {
            let ex = run.run_dt(c);
            let best = &ex.best().predicate;
            let acc = run.accuracy(best);
            r.push(vec![
                name.into(),
                f(c, 1),
                best.display(&run.ds.table),
                f(acc.precision, 3),
                f(acc.recall, 3),
                f(acc.f_score, 3),
            ]);
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_data::intel::failing_sensor;

    #[test]
    fn identifies_the_failing_sensor() {
        let r = &run(&Scale::quick())[0];
        assert_eq!(r.rows.len(), 2 * C_VALUES.len());
        // Every returned predicate should implicate the failing sensor
        // (sensorid clause containing s15 / s18) with good accuracy at
        // some c.
        for (wl, mode) in [
            ("1: dying sensor", scorpion_data::intel::FailureMode::DyingSensor),
            ("2: battery drain", scorpion_data::intel::FailureMode::BatteryDrain),
        ] {
            let sid = format!("s{:02}", failing_sensor(mode));
            let rows: Vec<_> = r.rows.iter().filter(|row| row[0] == wl).collect();
            let best_f = rows.iter().map(|row| row[5].parse::<f64>().unwrap()).fold(0.0, f64::max);
            assert!(best_f > 0.5, "workload {wl}: best F {best_f}");
            assert!(
                rows.iter().any(|row| row[2].contains(&sid)),
                "workload {wl}: no predicate names {sid}: {:?}",
                rows.iter().map(|row| row[2].clone()).collect::<Vec<_>>()
            );
        }
    }
}

//! Figure 13: F-score of DT / MC / NAIVE as the dataset dimensionality
//! grows from 2 to 4, on Easy and Hard.

use crate::experiments::{Scale, C_GRID};
use crate::harness::{dt, mc, naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_core::Algorithm;
use scorpion_data::synth::SynthConfig;

/// Regenerates Figure 13.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "Figure 13 — F-score vs c as dimensionality grows (outer truth; \
         NAIVE is budgeted beyond 2-D, as in the paper's 40-min cap)",
        &["dims", "difficulty", "algorithm", "c", "f_score"],
    );
    for dims in 2..=scale.max_dims {
        for (diff, base) in [("Easy", SynthConfig::easy(dims)), ("Hard", SynthConfig::hard(dims))] {
            let run = SynthRun::new(base.with_tuples_per_group(scale.tuples_per_group));
            for &c in &C_GRID {
                let algos: [(&str, Algorithm); 3] = [
                    ("dt", dt()),
                    ("mc", mc()),
                    ("naive", naive_with_budget(scale.naive_budget, false)),
                ];
                for (aname, algo) in algos {
                    let ex = run.run(algo, c);
                    let acc = run.accuracy(&ex.best().predicate, false);
                    r.push(vec![
                        dims.to_string(),
                        diff.into(),
                        aname.into(),
                        f(c, 2),
                        f(acc.f_score, 3),
                    ]);
                }
            }
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_dims_and_algorithms() {
        let scale = Scale { max_dims: 2, ..Scale::quick() };
        let r = &run(&scale)[0];
        assert_eq!(r.rows.len(), 2 /* diff */ * C_GRID.len() * 3);
        let fs: Vec<f64> = r.rows.iter().map(|row| row[4].parse().unwrap()).collect();
        assert!(fs.iter().all(|v| (0.0..=1.0).contains(v)));
        // At least one configuration achieves a reasonable F-score.
        assert!(fs.iter().cloned().fold(0.0, f64::max) > 0.3);
    }
}

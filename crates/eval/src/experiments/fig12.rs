//! Figure 12: accuracy of DT, MC, and NAIVE as `c` varies, on
//! SYNTH-2D-Easy and SYNTH-2D-Hard (outer-cube ground truth).

use crate::experiments::{Scale, C_GRID};
use crate::harness::{dt, mc, naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_core::Algorithm;
use scorpion_data::synth::SynthConfig;
use std::time::Duration;

/// Regenerates Figure 12.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "Figure 12 — accuracy vs c for DT / MC / NAIVE (2-D, outer truth)",
        &["dataset", "algorithm", "c", "precision", "recall", "f_score"],
    );
    for (name, cfg) in
        [("SYNTH-2D-Easy", SynthConfig::easy(2)), ("SYNTH-2D-Hard", SynthConfig::hard(2))]
    {
        let run = SynthRun::new(cfg.with_tuples_per_group(scale.tuples_per_group));
        for &c in &C_GRID {
            let algos: [(&str, Algorithm); 3] = [
                ("dt", dt()),
                ("mc", mc()),
                (
                    "naive",
                    naive_with_budget(scale.naive_budget.max(Duration::from_secs(20)), false),
                ),
            ];
            for (aname, algo) in algos {
                let ex = run.run(algo, c);
                let acc = run.accuracy(&ex.best().predicate, false);
                r.push(vec![
                    name.into(),
                    aname.into(),
                    f(c, 2),
                    f(acc.precision, 3),
                    f(acc.recall, 3),
                    f(acc.f_score, 3),
                ]);
            }
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_and_mc_are_competitive_with_naive_at_best_c() {
        let r = &run(&Scale::quick())[0];
        // Compare each algorithm's best F-score over the c grid (the
        // paper's takeaway: maximum F-scores are similar).
        {
            let name = "SYNTH-2D-Easy";
            let best_f = |alg: &str| -> f64 {
                r.rows
                    .iter()
                    .filter(|row| row[0] == name && row[1] == alg)
                    .map(|row| row[5].parse::<f64>().unwrap())
                    .fold(0.0, f64::max)
            };
            let (fd, fm, fn_) = (best_f("dt"), best_f("mc"), best_f("naive"));
            assert!(fd > 0.3, "dt best-F {fd}");
            assert!(fm > 0.3, "mc best-F {fm}");
            assert!(fn_ > 0.3, "naive best-F {fn_}");
        }
    }
}

//! Figure 10: NAIVE's accuracy statistics as `c` varies, against both
//! the inner- and outer-cube ground truths, on SYNTH-2D-Easy and
//! SYNTH-2D-Hard.

use crate::experiments::{Scale, C_GRID};
use crate::harness::{naive_with_budget, SynthRun};
use crate::report::{f, Report};
use scorpion_data::synth::SynthConfig;
use std::time::Duration;

/// Regenerates Figure 10's six panels as one table.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        "Figure 10 — NAIVE accuracy vs c (2-D, Easy & Hard, inner & outer \
         ground truth)",
        &["dataset", "c", "truth", "precision", "recall", "f_score"],
    );
    for (name, cfg) in
        [("SYNTH-2D-Easy", SynthConfig::easy(2)), ("SYNTH-2D-Hard", SynthConfig::hard(2))]
    {
        let run = SynthRun::new(cfg.with_tuples_per_group(scale.tuples_per_group));
        for &c in &C_GRID {
            let budget = scale.naive_budget.max(Duration::from_secs(30));
            let ex = run.run(naive_with_budget(budget, false), c);
            let best = &ex.best().predicate;
            for (truth, inner) in [("outer", false), ("inner", true)] {
                let acc = run.accuracy(best, inner);
                r.push(vec![
                    name.into(),
                    f(c, 2),
                    truth.into(),
                    f(acc.precision, 3),
                    f(acc.recall, 3),
                    f(acc.f_score, 3),
                ]);
            }
        }
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_precision_rises_with_c() {
        let r = &run(&Scale::quick())[0];
        // For each dataset, outer precision at the top c is at least the
        // precision at c = 0 (higher c is more selective).
        for name in ["SYNTH-2D-Easy", "SYNTH-2D-Hard"] {
            let ps: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row[0] == name && row[2] == "outer")
                .map(|row| row[3].parse().unwrap())
                .collect();
            assert_eq!(ps.len(), C_GRID.len());
            assert!(ps.last().unwrap() + 1e-9 >= ps[0], "{name}: precision series {ps:?}");
        }
    }
}

//! Experiment runners: one module per figure/table of the paper's
//! evaluation (§8). Each `run(&Scale)` regenerates the figure's
//! rows/series as [`Report`](crate::report::Report)s.

pub mod expense_exp;
pub mod fig01;
pub mod fig04;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod intel_exp;

use std::time::Duration;

/// The `c` grid the accuracy figures sweep (paper: 0 – 0.5).
pub const C_GRID: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5];

/// The `c` values of Figure 9's panels.
pub const C_FIG9: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.5];

/// Experiment scale: `full()` approximates the paper's setup; `quick()`
/// shrinks datasets and budgets for tests and smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// SYNTH tuples per group (paper: 2,000).
    pub tuples_per_group: usize,
    /// Anytime budget for NAIVE runs beyond 2-D.
    pub naive_budget: Duration,
    /// Largest dimensionality swept (paper: 4).
    pub max_dims: usize,
    /// Figure 15 group-size sweep.
    pub scale_sweep: &'static [usize],
    /// INTEL hours simulated.
    pub intel_hours: usize,
    /// EXPENSE days simulated.
    pub expense_days: usize,
}

impl Scale {
    /// Paper-equivalent scale.
    pub fn full() -> Self {
        Scale {
            tuples_per_group: 2000,
            naive_budget: Duration::from_secs(8),
            max_dims: 4,
            scale_sweep: &[500, 1000, 2500, 5000, 10_000],
            intel_hours: 72,
            expense_days: 180,
        }
    }

    /// Fast smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            tuples_per_group: 250,
            naive_budget: Duration::from_millis(400),
            max_dims: 3,
            scale_sweep: &[250, 500],
            intel_hours: 48,
            expense_days: 60,
        }
    }
}

//! Figure 4: the DT stopping-threshold curve ω(inf_max) (§6.1.1).

use crate::experiments::Scale;
use crate::report::{f, Report};
use scorpion_core::dt::ThresholdCurve;

/// Samples the threshold curve with the engine's default parameters.
pub fn run(_scale: &Scale) -> Vec<Report> {
    let cfg = scorpion_core::DtConfig::default();
    let curve = ThresholdCurve::new(cfg.tau_min, cfg.tau_max, cfg.inflection, 0.0, 100.0);
    let mut r = Report::new(
        format!(
            "Figure 4 — threshold curve ω(inf_max), τ_min={}, τ_max={}, p={}, \
             inf range [0, 100]",
            cfg.tau_min, cfg.tau_max, cfg.inflection
        ),
        &["inf_max", "omega", "threshold"],
    );
    for (x, w) in curve.sample(21) {
        r.push(vec![f(x, 1), f(w, 4), f(curve.threshold(x), 3)]);
    }
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_decreases_from_tau_max_to_tau_min() {
        let r = &run(&Scale::quick())[0];
        let omegas: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        assert_eq!(omegas.len(), 21);
        let cfg = scorpion_core::DtConfig::default();
        assert!((omegas[0] - cfg.tau_max).abs() < 1e-9);
        assert!((omegas[20] - cfg.tau_min).abs() < 1e-9);
        for w in omegas.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}

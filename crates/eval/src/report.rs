//! Plain-text report tables: the rows/series each figure regenerates.

use std::fmt::Write as _;

/// A titled table of string cells with aligned rendering and CSV export.
/// (Serialization beyond [`Report::to_csv`] is deliberately absent: the
/// offline build has no serde.)
#[derive(Debug, Clone)]
pub struct Report {
    /// Figure/table identifier plus a one-line description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; pads or truncates to the header arity.
    pub fn push(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (comma-separated, quotes on demand).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float with fixed precision (report cells).
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned() {
        let mut r = Report::new("Fig X — demo", &["c", "F-score"]);
        r.push(vec!["0.1".into(), "0.75".into()]);
        r.push(vec!["0.50".into(), "1".into()]);
        let s = r.render();
        assert!(s.contains("## Fig X — demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("c"));
    }

    #[test]
    fn push_pads_rows() {
        let mut r = Report::new("t", &["a", "b", "c"]);
        r.push(vec!["1".into()]);
        assert_eq!(r.rows[0].len(), 3);
    }

    #[test]
    fn csv_escapes() {
        let mut r = Report::new("t", &["name", "v"]);
        r.push(vec!["GMMB, INC.".into(), "1".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"GMMB, INC.\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.123456, 3), "0.123");
        assert_eq!(f(2.0, 1), "2.0");
    }
}

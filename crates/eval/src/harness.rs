//! Shared experiment harness: builds labeled queries over the generated
//! workloads, runs each algorithm, and scores results against ground
//! truth.

use crate::metrics::{predicate_accuracy, Accuracy};
use scorpion_agg::{StdDev, Sum};
use scorpion_core::{
    Algorithm, DtConfig, ExplainRequest, Explanation, LabeledQuery, McConfig, NaiveConfig, Scorpion,
};
use scorpion_data::expense::ExpenseDataset;
use scorpion_data::intel::IntelDataset;
use scorpion_data::synth::{SynthConfig, SynthDataset};
use scorpion_table::{group_by, Grouping, Predicate};
use std::sync::Arc;
use std::time::Duration;

/// The SYNTH workbench: dataset + grouping + labels, ready to run any
/// algorithm at any `c`.
pub struct SynthRun {
    /// The generated dataset (with ground truth).
    pub ds: SynthDataset,
    /// Grouping of `GROUP BY Ad`.
    pub grouping: Grouping,
    outlier_union: Vec<u32>,
    base: ExplainRequest,
}

impl SynthRun {
    /// Generates and indexes a SYNTH dataset.
    pub fn new(cfg: SynthConfig) -> Self {
        let ds = scorpion_data::synth::generate(cfg);
        let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group-by Ad");
        let mut outlier_union = Vec::new();
        for &g in &ds.outlier_groups {
            outlier_union.extend_from_slice(grouping.rows(g));
        }
        let base = Scorpion::on(ds.table.clone())
            .query(grouping.clone(), Arc::new(Sum), ds.agg_attr())
            .expect("synth query")
            .outliers(ds.outlier_groups.iter().map(|&g| (g, 1.0)))
            .holdouts(ds.holdout_groups.iter().copied())
            .explain_attrs(ds.dim_attrs())
            .params(0.5, 0.5)
            .build()
            .expect("synth request");
        SynthRun { ds, grouping, outlier_union, base }
    }

    /// The labeled query: outlier groups flagged "too high" (`v = <1>`),
    /// hold-out groups labeled as hold-outs.
    pub fn query(&self) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.ds.table,
            grouping: &self.grouping,
            agg: &Sum,
            agg_attr: self.ds.agg_attr(),
            outliers: self.ds.outlier_groups.iter().map(|&g| (g, 1.0)).collect(),
            holdouts: self.ds.holdout_groups.clone(),
        }
    }

    /// Union of the outlier input groups (`g_O`).
    pub fn outlier_rows(&self) -> &[u32] {
        &self.outlier_union
    }

    /// Scores a predicate against the inner- or outer-cube ground truth.
    pub fn accuracy(&self, pred: &Predicate, inner: bool) -> Accuracy {
        predicate_accuracy(&self.ds.table, pred, &self.outlier_union, self.ds.truth_rows(inner))
    }

    /// An owned request running `algorithm` at parameter `c` (λ = 0.5,
    /// the paper's setup). `Arc`-shares the dataset with this workbench.
    pub fn request(&self, algorithm: Algorithm, c: f64) -> ExplainRequest {
        self.base.with_algorithm(algorithm).with_c(c)
    }

    /// Runs an algorithm at parameter `c` (λ = 0.5, the paper's setup).
    pub fn run(&self, algorithm: Algorithm, c: f64) -> Explanation {
        self.request(algorithm, c).explain().expect("synth explain")
    }
}

/// NAIVE configuration with a wall-clock budget (the paper's anytime
/// variant).
pub fn naive_with_budget(budget: Duration, keep_trace: bool) -> Algorithm {
    Algorithm::Naive(NaiveConfig {
        time_budget: Some(budget),
        keep_trace,
        ..NaiveConfig::default()
    })
}

/// The default DT algorithm.
pub fn dt() -> Algorithm {
    Algorithm::DecisionTree(DtConfig::default())
}

/// DT without sampling (exact partitioning).
pub fn dt_unsampled() -> Algorithm {
    Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() })
}

/// The default MC algorithm.
pub fn mc() -> Algorithm {
    Algorithm::BottomUp(McConfig::default())
}

/// The INTEL workbench: dataset + grouping + labels for
/// `STDDEV(temp) GROUP BY hour`.
pub struct IntelRun {
    /// The generated dataset.
    pub ds: IntelDataset,
    /// Grouping by hour.
    pub grouping: Grouping,
    outlier_union: Vec<u32>,
    base: ExplainRequest,
}

impl IntelRun {
    /// Generates and indexes an INTEL dataset.
    pub fn new(cfg: scorpion_data::intel::IntelConfig) -> Self {
        let ds = scorpion_data::intel::generate(cfg);
        let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group-by hour");
        let mut outlier_union = Vec::new();
        for &g in &ds.outlier_hours {
            outlier_union.extend_from_slice(grouping.rows(g));
        }
        let base = Scorpion::on(ds.table.clone())
            .query(grouping.clone(), Arc::new(StdDev), ds.agg_attr())
            .expect("intel query")
            .outliers(ds.outlier_hours.iter().map(|&g| (g, 1.0)))
            .holdouts(ds.holdout_hours.iter().copied())
            .explain_attrs(ds.explain_attrs())
            .params(0.5, 0.5)
            .build()
            .expect("intel request");
        IntelRun { ds, grouping, outlier_union, base }
    }

    /// The labeled query (outlier hours "too high").
    pub fn query(&self) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.ds.table,
            grouping: &self.grouping,
            agg: &StdDev,
            agg_attr: self.ds.agg_attr(),
            outliers: self.ds.outlier_hours.iter().map(|&g| (g, 1.0)).collect(),
            holdouts: self.ds.holdout_hours.clone(),
        }
    }

    /// Union of the outlier input groups (`g_O`).
    pub fn outlier_rows(&self) -> &[u32] {
        &self.outlier_union
    }

    /// Scores a predicate against the failing-sensor ground truth.
    pub fn accuracy(&self, pred: &Predicate) -> Accuracy {
        predicate_accuracy(&self.ds.table, pred, &self.outlier_union, &self.ds.failing_rows)
    }

    /// An owned request running `algorithm` at parameter `c`.
    pub fn request(&self, algorithm: Algorithm, c: f64) -> ExplainRequest {
        self.base.with_algorithm(algorithm).with_c(c)
    }

    /// Runs DT at parameter `c`.
    pub fn run_dt(&self, c: f64) -> Explanation {
        self.request(dt(), c).explain().expect("intel explain")
    }
}

/// The EXPENSE workbench: dataset + grouping + labels for
/// `SUM(disb_amt) GROUP BY date`.
pub struct ExpenseRun {
    /// The generated dataset.
    pub ds: ExpenseDataset,
    /// Grouping by date.
    pub grouping: Grouping,
    outlier_union: Vec<u32>,
    base: ExplainRequest,
}

impl ExpenseRun {
    /// Generates and indexes an EXPENSE dataset.
    pub fn new(cfg: scorpion_data::expense::ExpenseConfig) -> Self {
        let ds = scorpion_data::expense::generate(cfg);
        let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group-by date");
        let mut outlier_union = Vec::new();
        for &g in &ds.outlier_days {
            outlier_union.extend_from_slice(grouping.rows(g));
        }
        let base = Scorpion::on(ds.table.clone())
            .query(grouping.clone(), Arc::new(Sum), ds.agg_attr())
            .expect("expense query")
            .outliers(ds.outlier_days.iter().map(|&g| (g, 1.0)))
            .holdouts(ds.holdout_days.iter().copied())
            .explain_attrs(ds.explain_attrs())
            .params(0.5, 0.5)
            .build()
            .expect("expense request");
        ExpenseRun { ds, grouping, outlier_union, base }
    }

    /// The labeled query (spike days "too high").
    pub fn query(&self) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.ds.table,
            grouping: &self.grouping,
            agg: &Sum,
            agg_attr: self.ds.agg_attr(),
            outliers: self.ds.outlier_days.iter().map(|&g| (g, 1.0)).collect(),
            holdouts: self.ds.holdout_days.clone(),
        }
    }

    /// Union of the outlier input groups (`g_O`).
    pub fn outlier_rows(&self) -> &[u32] {
        &self.outlier_union
    }

    /// Scores a predicate against the >$1.5M ground truth.
    pub fn accuracy(&self, pred: &Predicate) -> Accuracy {
        predicate_accuracy(&self.ds.table, pred, &self.outlier_union, &self.ds.big_expense_rows)
    }

    /// An owned request running `algorithm` at parameter `c`.
    pub fn request(&self, algorithm: Algorithm, c: f64) -> ExplainRequest {
        self.base.with_algorithm(algorithm).with_c(c)
    }

    /// Runs MC (the paper's choice: SUM over positive amounts) at `c`.
    pub fn run_mc(&self, c: f64) -> Explanation {
        self.request(mc(), c).explain().expect("expense explain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_run_scores_truth_predicate_perfectly() {
        let run = SynthRun::new(SynthConfig::easy(2));
        let truth_pred = run.ds.truth_predicate(false);
        let acc = run.accuracy(&truth_pred, false);
        assert!(acc.precision > 0.999);
        assert!(acc.recall > 0.999);
        assert!(acc.f_score > 0.999);
    }

    #[test]
    fn synth_inner_truth_is_subset_of_outer() {
        let run = SynthRun::new(SynthConfig::hard(2));
        let inner_pred = run.ds.truth_predicate(true);
        let acc_outer = run.accuracy(&inner_pred, false);
        // Inner cube predicate has perfect precision against outer truth
        // but limited recall (≈ 25%).
        assert!(acc_outer.precision > 0.999);
        assert!(acc_outer.recall < 0.5);
    }

    #[test]
    fn expense_truth_scoring() {
        let run = ExpenseRun::new(Default::default());
        // The planted 4-clause explanation from §8.4.
        let t = &run.ds.table;
        let nm = t.cat(2).unwrap().code_of("GMMB INC.").unwrap();
        let pred = Predicate::conjunction([scorpion_table::Clause::in_set(2, [nm])]).unwrap();
        let acc = run.accuracy(&pred);
        // All GMMB rows on spike days are > $1.5M in the simulator.
        assert!(acc.recall > 0.999);
        assert!(acc.precision > 0.999);
    }
}

//! `figures` — regenerates the rows/series of every figure in the
//! Scorpion evaluation.
//!
//! Usage:
//!
//! ```text
//! figures [--quick] [--csv] [EXPERIMENT ...]
//! figures all              # every figure at paper scale
//! figures fig12 fig14      # a subset
//! ```

use scorpion_eval::{run_experiment, Scale, EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let mut names: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };

    for name in &names {
        let start = Instant::now();
        match run_experiment(name, &scale) {
            Some(reports) => {
                for r in reports {
                    if csv {
                        println!("# {}", r.title);
                        print!("{}", r.to_csv());
                    } else {
                        print!("{}", r.render());
                    }
                    println!();
                }
                eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{name}`; available: {}", EXPERIMENTS.join(", "));
                std::process::exit(2);
            }
        }
    }
}

//! Accuracy metrics (§8.2): precision, recall, and F-score of a
//! predicate's selected tuples against a ground-truth row set.

use scorpion_table::{Predicate, Table};
use std::collections::HashSet;

/// Precision / recall / F-score triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// |selected ∩ truth| / |selected| (1.0 when nothing is selected and
    /// the truth is empty, else 0.0 for empty selections).
    pub precision: f64,
    /// |selected ∩ truth| / |truth|.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f_score: f64,
}

/// Computes accuracy of a selected row set against a truth row set.
pub fn accuracy(selected: &[u32], truth: &[u32]) -> Accuracy {
    let truth_set: HashSet<u32> = truth.iter().copied().collect();
    let hit = selected.iter().filter(|r| truth_set.contains(r)).count() as f64;
    let precision = if selected.is_empty() {
        if truth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hit / selected.len() as f64
    };
    let recall = if truth.is_empty() { 1.0 } else { hit / truth.len() as f64 };
    let f_score = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Accuracy { precision, recall, f_score }
}

/// §8.2: compares `p(g_O)` — the predicate applied to the union of the
/// outlier input groups — against the ground-truth rows.
pub fn predicate_accuracy(
    table: &Table,
    predicate: &Predicate,
    outlier_rows: &[u32],
    truth: &[u32],
) -> Accuracy {
    let selected = predicate.select(table, outlier_rows).expect("predicate binds to table");
    accuracy(&selected, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::{Clause, Field, Schema, TableBuilder, Value};

    #[test]
    fn perfect_match() {
        let a = accuracy(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 1.0);
        assert_eq!(a.f_score, 1.0);
    }

    #[test]
    fn partial_overlap() {
        // selected = {1,2,3,4}, truth = {3,4,5,6}: hit 2.
        let a = accuracy(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert_eq!(a.precision, 0.5);
        assert_eq!(a.recall, 0.5);
        assert_eq!(a.f_score, 0.5);
    }

    #[test]
    fn asymmetric_precision_recall() {
        // Narrow, pure selection: precision 1, recall 1/4 → F = 0.4.
        let a = accuracy(&[7], &[7, 8, 9, 10]);
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 0.25);
        assert!((a.f_score - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let a = accuracy(&[], &[1]);
        assert_eq!(a.precision, 0.0);
        assert_eq!(a.recall, 0.0);
        assert_eq!(a.f_score, 0.0);
        let b = accuracy(&[], &[]);
        assert_eq!(b.precision, 1.0);
        assert_eq!(b.recall, 1.0);
        let c = accuracy(&[1], &[]);
        assert_eq!(c.recall, 1.0);
        assert_eq!(c.precision, 0.0);
    }

    #[test]
    fn predicate_accuracy_respects_outlier_scope() {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..10 {
            b.push_row(vec![Value::from(i as f64)]).unwrap();
        }
        let t = b.build();
        let p = Predicate::conjunction([Clause::range(0, 2.0, 6.0)]).unwrap();
        // Outlier scope = rows 0..5; predicate selects {2,3,4,5}∩scope =
        // {2,3,4}; truth {3,4}.
        let a = predicate_accuracy(&t, &p, &[0, 1, 2, 3, 4], &[3, 4]);
        assert!((a.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.recall, 1.0);
    }
}

//! # scorpion-eval
//!
//! Experiment runners and accuracy metrics reproducing every figure of
//! the Scorpion evaluation (§8). The `figures` binary prints the
//! rows/series each figure plots:
//!
//! ```text
//! cargo run --release -p scorpion-eval --bin figures -- all
//! cargo run --release -p scorpion-eval --bin figures -- fig12 fig14 --quick
//! ```
//!
//! See DESIGN.md for the experiment index (figure → modules → harness).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;

pub use experiments::Scale;
pub use metrics::{accuracy, predicate_accuracy, Accuracy};
pub use report::Report;

/// All experiment names, in presentation order.
pub const EXPERIMENTS: [&str; 13] = [
    "fig01", "fig04", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "intel", "expense",
];

/// Runs one experiment by name.
pub fn run_experiment(name: &str, scale: &Scale) -> Option<Vec<Report>> {
    let reports = match name {
        "fig01" => experiments::fig01::run(scale),
        "fig04" => experiments::fig04::run(scale),
        "fig08" => experiments::fig08::run(scale),
        "fig09" => experiments::fig09::run(scale),
        "fig10" => experiments::fig10::run(scale),
        "fig11" => experiments::fig11::run(scale),
        "fig12" => experiments::fig12::run(scale),
        "fig13" => experiments::fig13::run(scale),
        "fig14" => experiments::fig14::run(scale),
        "fig15" => experiments::fig15::run(scale),
        "fig16" => experiments::fig16::run(scale),
        "intel" => experiments::intel_exp::run(scale),
        "expense" => experiments::expense_exp::run(scale),
        _ => return None,
    };
    Some(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_experiments_resolve() {
        // Only resolve the cheap ones here; heavyweight runners have their
        // own module tests.
        {
            let name = "fig04";
            assert!(run_experiment(name, &Scale::quick()).is_some());
        }
        assert!(run_experiment("nope", &Scale::quick()).is_none());
        assert_eq!(EXPERIMENTS.len(), 13);
    }
}

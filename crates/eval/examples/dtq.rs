use scorpion_core::{Algorithm, DtConfig};
use scorpion_data::synth::SynthConfig;
use scorpion_eval::harness::SynthRun;
use std::time::Instant;
fn main() {
    for (dname, dcfg) in [
        ("Easy2D", SynthConfig::easy(2)),
        ("Hard2D", SynthConfig::hard(2)),
        ("Easy3D", SynthConfig::easy(3)),
    ] {
        let run = SynthRun::new(dcfg);
        for nsc in [16usize, 24, 32] {
            for c in [0.1, 0.35] {
                let cfg = DtConfig { n_split_candidates: nsc, ..DtConfig::default() };
                let t0 = Instant::now();
                let ex = run.run(Algorithm::DecisionTree(cfg), c);
                let acc = run.accuracy(&ex.best().predicate, false);
                println!(
                    "{dname} nsc={nsc} c={c}: F={:.3} t={:.2}s",
                    acc.f_score,
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }
}

//! Property tests for the sketch laws the streaming layer depends on:
//!
//! * accuracy — every estimate stays within the sketch's own
//!   runtime-reported error bound against an exact recompute;
//! * merge ≡ single-stream — splitting a stream across partials and
//!   merging gives the same sketch as one pass;
//! * retract ∘ merge ≡ identity (quantiles) — subtracting a chunk's
//!   partial restores the pre-merge state bit-for-bit.

use proptest::prelude::*;
use scorpion_sketch::{HyperLogLog, QuantileSketch, SketchPartial, SpaceSaving};
use std::collections::HashMap;

/// Exact quantile under the sketch's rank convention:
/// `rank = clamp(ceil(q·n), 1, n)` over the ascending sort.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Sketch error check: `|est − exact| ≤ α·|exact| + floor` with a hair
/// of slack for values landing exactly on a bucket boundary.
fn within_bound(est: f64, exact: f64, alpha: f64) -> bool {
    (est - exact).abs() <= alpha * exact.abs() * (1.0 + 1e-9) + 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates stay inside the sketch's reported α at every
    /// probed q, for signed values across several magnitudes.
    #[test]
    fn quantile_within_reported_bound(
        values in prop::collection::vec(-1e6f64..1e6f64, 1..400),
        q in 0.0f64..1.0f64,
    ) {
        let mut s = QuantileSketch::default_sketch();
        for &v in &values {
            s.insert(v);
        }
        prop_assert_eq!(s.count(), values.len() as u64);
        let est = s.quantile(q);
        let exact = exact_quantile(&values, q);
        prop_assert!(
            within_bound(est, exact, s.alpha()),
            "q={} est={} exact={} alpha={}", q, est, exact, s.alpha()
        );
    }

    /// The bound survives forced compaction: a tiny bucket budget over
    /// wide magnitudes collapses repeatedly, and the *current* alpha
    /// still covers the estimate.
    #[test]
    fn quantile_bound_survives_collapse(
        exponents in prop::collection::vec(0usize..40, 16..200),
        q in 0.0f64..1.0f64,
    ) {
        let mut s = QuantileSketch::new(0.01, 8).unwrap();
        let values: Vec<f64> = exponents.iter().map(|&e| (1.5f64).powi(e as i32)).collect();
        for &v in &values {
            s.insert(v);
        }
        prop_assert!(s.compactions() > 0 || s.buckets() <= 8);
        let est = s.quantile(q);
        let exact = exact_quantile(&values, q);
        prop_assert!(
            within_bound(est, exact, s.alpha()),
            "est={} exact={} alpha={} compactions={}", est, exact, s.alpha(), s.compactions()
        );
    }

    /// Splitting the stream into k partials and merging them equals the
    /// single-stream sketch exactly (same counts, same level).
    #[test]
    fn quantile_merge_equals_single_stream(
        values in prop::collection::vec(-1e4f64..1e4f64, 1..300),
        splits in 1usize..5,
    ) {
        let mut single = QuantileSketch::default_sketch();
        let mut parts: Vec<QuantileSketch> =
            (0..splits).map(|_| QuantileSketch::default_sketch()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.insert(v);
            parts[i % splits].insert(v);
        }
        let mut merged = parts[0].clone();
        for p in &parts[1..] {
            merged.merge(p).unwrap();
        }
        prop_assert_eq!(merged, single);
    }

    /// retract ∘ merge ≡ identity: merging a chunk partial into a total
    /// and retracting it restores the total bit-for-bit.
    #[test]
    fn quantile_retract_inverts_merge(
        base in prop::collection::vec(-1e5f64..1e5f64, 0..200),
        chunk in prop::collection::vec(-1e5f64..1e5f64, 1..80),
    ) {
        let mut total = QuantileSketch::default_sketch();
        for &v in &base {
            total.insert(v);
        }
        let mut part = QuantileSketch::default_sketch();
        for &v in &chunk {
            part.insert(v);
        }
        let before = total.clone();
        total.merge(&part).unwrap();
        total.retract(&part).unwrap();
        prop_assert_eq!(total, before);
    }

    /// Codec round trip is lossless for arbitrary sketch contents.
    #[test]
    fn quantile_codec_round_trip(
        values in prop::collection::vec(-1e8f64..1e8f64, 0..200),
    ) {
        let mut s = QuantileSketch::default_sketch();
        for &v in &values {
            s.insert(v);
        }
        let p = SketchPartial::Quantile(s);
        let decoded = SketchPartial::decode(&p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// HLL++ estimate lands within 4σ of the true distinct count (the
    /// deterministic hash makes this a fixed outcome per input set, so
    /// a generous sigma keeps the test stable without being vacuous).
    #[test]
    fn hll_within_four_sigma(
        distinct in 1usize..3000,
        dup_factor in 1usize..4,
    ) {
        let mut s = HyperLogLog::default_sketch();
        for rep in 0..dup_factor {
            let _ = rep;
            for i in 0..distinct {
                s.insert_f64(i as f64 * 1.618 + 0.25);
            }
        }
        let est = s.estimate();
        let tol = 4.0 * s.relative_error() * distinct as f64 + 1.0;
        prop_assert!(
            (est - distinct as f64).abs() <= tol,
            "est={} true={} tol={}", est, distinct, tol
        );
    }

    /// HLL merge equals the single-stream sketch register-for-register.
    #[test]
    fn hll_merge_equals_single_stream(
        values in prop::collection::vec(-1e6f64..1e6f64, 1..500),
        splits in 1usize..5,
    ) {
        let mut single = HyperLogLog::new(10).unwrap();
        let mut parts: Vec<HyperLogLog> =
            (0..splits).map(|_| HyperLogLog::new(10).unwrap()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.insert_f64(v);
            parts[i % splits].insert_f64(v);
        }
        let mut merged = parts[0].clone();
        for p in &parts[1..] {
            merged.merge(p).unwrap();
        }
        prop_assert_eq!(merged, single);
    }

    /// SpaceSaving guarantee: counts never undercount, the overcount is
    /// bounded by n/k, and every key with true frequency > n/k is
    /// monitored.
    #[test]
    fn spacesaving_guarantee(
        draws in prop::collection::vec(0usize..40, 50..600),
        capacity in 4usize..16,
    ) {
        let mut s = SpaceSaving::new(capacity).unwrap();
        let mut truth: HashMap<String, u64> = HashMap::new();
        for &d in &draws {
            // Quadratic skew: low indices dominate.
            let key = format!("k{}", d * d / 40);
            s.insert(&key, 1);
            *truth.entry(key).or_insert(0) += 1;
        }
        let n = s.total();
        let k = s.capacity() as u64;
        prop_assert_eq!(n, draws.len() as u64);
        for h in s.heavy_hitters() {
            let t = truth.get(h.key.as_str()).copied().unwrap_or(0);
            prop_assert!(h.count >= t, "undercount {} {} < {}", h.key, h.count, t);
            prop_assert!(h.count - h.err <= t, "lower bound broken for {}", h.key);
            prop_assert!(h.err <= n / k, "err {} above n/k {}", h.err, n / k);
        }
        for (key, &t) in &truth {
            if t > n / k {
                prop_assert!(s.get(key).is_some(), "frequent key {} missing", key);
            }
        }
    }

    /// Merged SpaceSaving summaries still never undercount and keep
    /// very frequent keys monitored.
    #[test]
    fn spacesaving_merge_preserves_guarantee(
        draws in prop::collection::vec(0usize..40, 50..600),
        capacity in 4usize..16,
    ) {
        let mut a = SpaceSaving::new(capacity).unwrap();
        let mut b = SpaceSaving::new(capacity).unwrap();
        let mut truth: HashMap<String, u64> = HashMap::new();
        for (i, &d) in draws.iter().enumerate() {
            let key = format!("k{}", d * d / 40);
            if i % 2 == 0 { a.insert(&key, 1) } else { b.insert(&key, 1) }
            *truth.entry(key).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        let n = a.total();
        let k = a.capacity() as u64;
        for h in a.heavy_hitters() {
            let t = truth.get(h.key.as_str()).copied().unwrap_or(0);
            prop_assert!(h.count >= t, "merged undercount for {}", h.key);
        }
        for (key, &t) in &truth {
            if t > 2 * n / k {
                prop_assert!(a.get(key).is_some(), "very frequent key {} missing", key);
            }
        }
    }
}

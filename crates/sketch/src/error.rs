//! Error and error-bound types shared by every sketch.

use std::fmt;

/// Errors produced by sketch construction and the partial codec.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// A construction parameter is out of its documented range.
    BadConfig(&'static str),
    /// A serialized partial failed to decode.
    Corrupt(String),
    /// Two partials from incompatible configurations (different α
    /// family, register count, or capacity) were combined.
    Incompatible(&'static str),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::BadConfig(msg) => write!(f, "bad sketch configuration: {msg}"),
            SketchError::Corrupt(msg) => write!(f, "corrupt sketch partial: {msg}"),
            SketchError::Incompatible(msg) => write!(f, "incompatible sketch partials: {msg}"),
        }
    }
}

impl std::error::Error for SketchError {}

/// A runtime-queryable error bound: what the sketch guarantees about
/// its estimate *right now* (bounds can widen as a sketch compacts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Deterministic relative-value bound: `|est − true| ≤ rel·|true|`,
    /// except within `floor` of zero where the absolute error is at
    /// most `floor` (log buckets cannot resolve a neighborhood of 0).
    RelativeValue {
        /// Relative error on the value.
        rel: f64,
        /// Absolute error floor near zero.
        floor: f64,
    },
    /// Probabilistic relative bound: the standard error of the estimate
    /// is `rel·true` (so ~65% of estimates fall within one `rel`, ~95%
    /// within two).
    RelativeStdDev(f64),
    /// Deterministic absolute bound: `true ≤ est ≤ true + abs`.
    AbsoluteCount(f64),
    /// The estimate is exact.
    Exact,
}

impl fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorBound::RelativeValue { rel, floor } => {
                write!(f, "relative value error <= {:.4} (floor {:.1e} near 0)", rel, floor)
            }
            ErrorBound::RelativeStdDev(rel) => {
                write!(f, "relative standard error ~= {:.4}", rel)
            }
            ErrorBound::AbsoluteCount(abs) => write!(f, "absolute overcount <= {abs:.1}"),
            ErrorBound::Exact => write!(f, "exact"),
        }
    }
}

impl ErrorBound {
    /// The bound's headline magnitude (relative or absolute), for
    /// rendering and comparisons.
    pub fn magnitude(&self) -> f64 {
        match self {
            ErrorBound::RelativeValue { rel, .. } => *rel,
            ErrorBound::RelativeStdDev(rel) => *rel,
            ErrorBound::AbsoluteCount(abs) => *abs,
            ErrorBound::Exact => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SketchError::BadConfig("alpha");
        assert!(e.to_string().contains("alpha"));
        let b = ErrorBound::RelativeValue { rel: 0.01, floor: 1e-9 };
        assert!(b.to_string().contains("0.0100"));
        assert_eq!(b.magnitude(), 0.01);
        assert_eq!(ErrorBound::Exact.magnitude(), 0.0);
    }
}

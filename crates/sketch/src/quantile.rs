//! UDD/DDSketch-style log-bucketed quantile sketch.
//!
//! Values are binned by magnitude into logarithmic buckets: bucket `i`
//! covers `(γ^(i-1), γ^i]` where `γ = (1+α)/(1-α)`. Reporting the
//! bucket midpoint `2γ^i/(γ+1)` for any value in the bucket gives a
//! relative error of at most `α`. Negative values live in a mirrored
//! bucket store; values within `zero_floor` of 0 land in a dedicated
//! zero bucket (log buckets cannot resolve a neighborhood of zero).
//!
//! Because the state is just *counts per bucket*, the sketch forms a
//! group under merge: [`QuantileSketch::retract`] subtracts counts and
//! is an exact inverse of [`QuantileSketch::merge`] once compaction
//! levels are aligned. When the number of occupied buckets exceeds the
//! configured budget, adjacent bucket pairs collapse (`γ ← γ²`), which
//! widens `α`; the current guarantee is always available via
//! [`QuantileSketch::alpha`] / [`QuantileSketch::error_bound`].

use std::collections::BTreeMap;

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{ErrorBound, SketchError};
use crate::Result;

/// Values with magnitude at or below this land in the zero bucket.
const ZERO_FLOOR: f64 = 1e-9;

/// Hard cap on pairwise collapses. At the default α₀ = 0.01 even level
/// 10 corresponds to γ ≈ 8·10⁸ — far past any useful guarantee — so
/// this is a divergence backstop, not a tuning knob.
const MAX_COMPACTIONS: u32 = 32;

/// A mergeable, retractable quantile sketch with a relative-value
/// error guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Initial (pre-collapse) relative error.
    alpha0: f64,
    /// Maximum occupied buckets (positive + negative stores) before a
    /// pairwise collapse doubles the bucket width.
    max_buckets: usize,
    /// Number of pairwise collapses applied so far.
    compactions: u32,
    /// `ln γ` at the current compaction level.
    ln_gamma: f64,
    /// Counts for positive magnitudes, keyed by bucket index.
    pos: BTreeMap<i64, u64>,
    /// Counts for negative magnitudes (bucket of `|v|`).
    neg: BTreeMap<i64, u64>,
    /// Count of values with `|v| <= ZERO_FLOOR`.
    zero: u64,
    /// Total inserted count.
    n: u64,
}

impl QuantileSketch {
    /// Default initial relative error (1%).
    pub const DEFAULT_ALPHA: f64 = 0.01;
    /// Default bucket budget. At α = 0.01 this spans ~18 decades of
    /// magnitude before the first collapse.
    pub const DEFAULT_MAX_BUCKETS: usize = 2048;

    /// Sketch with [`Self::DEFAULT_ALPHA`] and [`Self::DEFAULT_MAX_BUCKETS`].
    pub fn default_sketch() -> Self {
        Self::new(Self::DEFAULT_ALPHA, Self::DEFAULT_MAX_BUCKETS).expect("default config is valid")
    }

    /// Build a sketch with initial relative error `alpha` (in
    /// `(0, 0.5)`) and a bucket budget of at least 8.
    pub fn new(alpha: f64, max_buckets: usize) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 0.5) {
            return Err(SketchError::BadConfig("alpha must be in (0, 0.5)"));
        }
        if max_buckets < 8 {
            return Err(SketchError::BadConfig("max_buckets must be >= 8"));
        }
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Ok(Self {
            alpha0: alpha,
            max_buckets,
            compactions: 0,
            ln_gamma: gamma.ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            n: 0,
        })
    }

    /// An empty sketch of the same family (same `α₀` and bucket
    /// budget), at compaction level 0.
    pub fn fresh(&self) -> Self {
        Self::new(self.alpha0, self.max_buckets).expect("existing config is valid")
    }

    /// Total number of inserted values still represented.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// `true` when no values are represented.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current relative-error guarantee `α = (γ−1)/(γ+1) = tanh(ln γ / 2)`.
    /// Grows monotonically as the sketch collapses buckets.
    pub fn alpha(&self) -> f64 {
        (self.ln_gamma / 2.0).tanh()
    }

    /// Number of pairwise collapses applied so far (0 means the sketch
    /// still honors its construction-time `α`).
    pub fn compactions(&self) -> u32 {
        self.compactions
    }

    /// Occupied buckets across both magnitude stores.
    pub fn buckets(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// The guarantee on any quantile estimate, at the current
    /// compaction level.
    pub fn error_bound(&self) -> ErrorBound {
        ErrorBound::RelativeValue { rel: self.alpha(), floor: ZERO_FLOOR }
    }

    /// Bucket index for a magnitude strictly above `ZERO_FLOOR`:
    /// `i = ceil(ln x / ln γ)`, covering `(γ^(i-1), γ^i]`.
    fn bucket_of(&self, magnitude: f64) -> i64 {
        (magnitude.ln() / self.ln_gamma).ceil() as i64
    }

    /// Midpoint estimate for bucket `i`: `2γ^i/(γ+1)`, which bounds the
    /// relative error by `α` for every value in the bucket.
    fn estimate_of(&self, bucket: i64) -> f64 {
        let gamma = self.ln_gamma.exp();
        (bucket as f64 * self.ln_gamma).exp() * 2.0 / (gamma + 1.0)
    }

    /// Insert one value. NaN is ignored (consistent with the exact
    /// aggregates, which never see NaN from the table layer).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        let mag = v.abs();
        if mag <= ZERO_FLOOR {
            self.zero += 1;
        } else {
            let idx = self.bucket_of(mag);
            let store = if v > 0.0 { &mut self.pos } else { &mut self.neg };
            *store.entry(idx).or_insert(0) += 1;
        }
        self.maybe_collapse();
    }

    /// One pairwise collapse: `γ ← γ²`, old bucket `i` maps to
    /// `ceil(i/2)` (so `{2j−1, 2j} → j`, preserving the covering
    /// intervals exactly).
    fn collapse_once(&mut self) {
        self.compactions += 1;
        self.ln_gamma *= 2.0;
        for store in [&mut self.pos, &mut self.neg] {
            let old = std::mem::take(store);
            for (i, c) in old {
                *store.entry(map_up(i, 1)).or_insert(0) += c;
            }
        }
    }

    fn maybe_collapse(&mut self) {
        while self.buckets() > self.max_buckets && self.compactions < MAX_COMPACTIONS {
            self.collapse_once();
        }
    }

    /// Raise this sketch to at least `level` compactions.
    fn align_to(&mut self, level: u32) {
        while self.compactions < level {
            self.collapse_once();
        }
    }

    fn check_family(&self, other: &Self) -> Result<()> {
        if (self.alpha0 - other.alpha0).abs() > f64::EPSILON
            || self.max_buckets != other.max_buckets
        {
            return Err(SketchError::Incompatible(
                "quantile sketches built with different alpha or bucket budget",
            ));
        }
        Ok(())
    }

    /// Merge `other` into `self`. Both sketches are first aligned to
    /// the coarser compaction level; counts then add bucket-wise.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        self.check_family(other)?;
        self.align_to(other.compactions);
        let lift = self.compactions - other.compactions;
        for (store, theirs) in [(&mut self.pos, &other.pos), (&mut self.neg, &other.neg)] {
            for (&i, &c) in theirs {
                *store.entry(map_up(i, lift)).or_insert(0) += c;
            }
        }
        self.zero += other.zero;
        self.n += other.n;
        self.maybe_collapse();
        Ok(())
    }

    /// Subtract `other` from `self` — the inverse of [`Self::merge`]
    /// when `other`'s values are a subset of `self`'s history. `self`
    /// is aligned up to `other`'s compaction level if needed; counts
    /// saturate at zero so a stray over-retract cannot wrap.
    pub fn retract(&mut self, other: &Self) -> Result<()> {
        self.check_family(other)?;
        self.align_to(other.compactions);
        let lift = self.compactions - other.compactions;
        for (store, theirs) in [(&mut self.pos, &other.pos), (&mut self.neg, &other.neg)] {
            for (&i, &c) in theirs {
                let key = map_up(i, lift);
                if let Some(slot) = store.get_mut(&key) {
                    *slot = slot.saturating_sub(c);
                    if *slot == 0 {
                        store.remove(&key);
                    }
                }
            }
        }
        self.zero = self.zero.saturating_sub(other.zero);
        self.n = self.n.saturating_sub(other.n);
        Ok(())
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) under the rank
    /// convention `rank = max(ceil(q·n), 1)` over the ascending sort —
    /// the same convention as the exact `percentile` aggregate, so
    /// `q = 0.5` matches the exact lower median. Returns 0.0 on an
    /// empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        // Ascending value order: most-negative first (negative store by
        // descending bucket index), then zero, then positives ascending.
        for (&i, &c) in self.neg.iter().rev() {
            cum += c;
            if cum >= rank {
                return -self.estimate_of(i);
            }
        }
        cum += self.zero;
        if cum >= rank {
            return 0.0;
        }
        for (&i, &c) in self.pos.iter() {
            cum += c;
            if cum >= rank {
                return self.estimate_of(i);
            }
        }
        // Counts always sum to n; unreachable unless state was corrupted.
        match self.pos.keys().next_back() {
            Some(&i) => self.estimate_of(i),
            None => 0.0,
        }
    }

    /// Serialize to the pinned little-endian wire form.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_f64(self.alpha0);
        w.put_u32(self.max_buckets as u32);
        w.put_u32(self.compactions);
        w.put_u64(self.zero);
        w.put_u64(self.n);
        for store in [&self.pos, &self.neg] {
            w.put_u32(store.len() as u32);
            for (&i, &c) in store {
                w.put_i64(i);
                w.put_u64(c);
            }
        }
    }

    /// Decode from the wire form produced by [`Self::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let alpha0 = r.get_f64()?;
        let max_buckets = r.get_u32()? as usize;
        let compactions = r.get_u32()?;
        if compactions > MAX_COMPACTIONS {
            return Err(SketchError::Corrupt(format!(
                "compaction level {compactions} exceeds maximum {MAX_COMPACTIONS}"
            )));
        }
        let mut s = Self::new(alpha0, max_buckets)?;
        s.zero = r.get_u64()?;
        s.n = r.get_u64()?;
        for _ in 0..compactions {
            s.compactions += 1;
            s.ln_gamma *= 2.0;
        }
        for store_ix in 0..2 {
            let len = r.get_u32()? as usize;
            let store = if store_ix == 0 { &mut s.pos } else { &mut s.neg };
            for _ in 0..len {
                let i = r.get_i64()?;
                let c = r.get_u64()?;
                if c == 0 {
                    return Err(SketchError::Corrupt("zero bucket count".into()));
                }
                store.insert(i, c);
            }
        }
        let total: u64 = s.pos.values().chain(s.neg.values()).sum::<u64>() + s.zero;
        if total != s.n {
            return Err(SketchError::Corrupt(format!(
                "bucket counts sum to {total}, header says {}",
                s.n
            )));
        }
        Ok(s)
    }

    /// Approximate heap footprint in bytes (for resident accounting).
    pub fn approx_bytes(&self) -> usize {
        // BTreeMap nodes are heavier than 16 bytes/entry; 48 is a fair
        // amortized figure for (i64, u64) leaves plus interior nodes.
        std::mem::size_of::<Self>() + 48 * self.buckets()
    }
}

/// Map a bucket index up `levels` pairwise collapses:
/// one level sends `{2j−1, 2j} → j`, i.e. `j = ceil(i/2)`.
fn map_up(mut i: i64, levels: u32) -> i64 {
    for _ in 0..levels {
        i = (i + 1).div_euclid(2);
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(values: &mut [f64], q: f64) -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        values[rank - 1]
    }

    #[test]
    fn empty_sketch_reports_zero() {
        let s = QuantileSketch::default_sketch();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn single_value_within_alpha() {
        let mut s = QuantileSketch::default_sketch();
        s.insert(42.0);
        let est = s.quantile(0.5);
        assert!((est - 42.0).abs() <= s.alpha() * 42.0 * (1.0 + 1e-9));
    }

    #[test]
    fn median_of_known_sequence_within_bound() {
        let mut s = QuantileSketch::default_sketch();
        let mut vals: Vec<f64> = (1..=1001).map(|i| i as f64).collect();
        for &v in &vals {
            s.insert(v);
        }
        let exact = exact_quantile(&mut vals, 0.5);
        let est = s.quantile(0.5);
        assert!(
            (est - exact).abs() <= s.alpha() * exact.abs() + 1e-9,
            "est {est} exact {exact} alpha {}",
            s.alpha()
        );
    }

    #[test]
    fn negative_and_zero_values_resolve() {
        let mut s = QuantileSketch::default_sketch();
        for v in [-10.0, -5.0, 0.0, 5.0, 10.0] {
            s.insert(v);
        }
        // rank ceil(0.5*5)=3 → value 0.0
        assert_eq!(s.quantile(0.5), 0.0);
        let lo = s.quantile(0.0); // rank 1 → -10
        assert!((lo - (-10.0)).abs() <= s.alpha() * 10.0 + 1e-9, "lo {lo}");
        let hi = s.quantile(1.0); // rank 5 → 10
        assert!((hi - 10.0).abs() <= s.alpha() * 10.0 + 1e-9, "hi {hi}");
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut all = QuantileSketch::default_sketch();
        let mut a = QuantileSketch::default_sketch();
        let mut b = QuantileSketch::default_sketch();
        for i in 0..500 {
            let v = (i as f64) * 0.7 - 100.0;
            all.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a, all);
    }

    #[test]
    fn retract_inverts_merge_exactly() {
        let mut total = QuantileSketch::default_sketch();
        let mut chunk = QuantileSketch::default_sketch();
        for i in 0..300 {
            total.insert(i as f64);
        }
        let snapshot = total.clone();
        for v in [7.5, -3.25, 0.0, 1e6] {
            chunk.insert(v);
        }
        total.merge(&chunk).unwrap();
        total.retract(&chunk).unwrap();
        assert_eq!(total, snapshot);
    }

    #[test]
    fn collapse_widens_alpha_but_keeps_counts() {
        let mut s = QuantileSketch::new(0.01, 8).unwrap();
        let initial_alpha = s.alpha();
        for i in 0..1000 {
            s.insert((1.5f64).powi(i % 60) * if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!(s.compactions() > 0, "tiny budget must force collapse");
        assert!(s.alpha() > initial_alpha);
        assert!(s.buckets() <= 8 || s.compactions() == 32);
        assert_eq!(s.count(), 1000);
    }

    #[test]
    fn merge_aligns_mismatched_compaction_levels() {
        let mut coarse = QuantileSketch::new(0.01, 8).unwrap();
        for i in 0..500 {
            coarse.insert((1.3f64).powi(i % 80));
        }
        assert!(coarse.compactions() > 0);
        let mut fine = QuantileSketch::new(0.01, 8).unwrap();
        fine.insert(2.0);
        let n = coarse.count() + fine.count();
        coarse.merge(&fine).unwrap();
        assert_eq!(coarse.count(), n);
        // And the other direction: merging coarse into fine lifts fine.
        let mut fine2 = QuantileSketch::new(0.01, 8).unwrap();
        fine2.insert(2.0);
        fine2.merge(&coarse).unwrap();
        assert!(fine2.compactions() >= coarse.compactions());
    }

    #[test]
    fn incompatible_families_refuse_to_merge() {
        let mut a = QuantileSketch::new(0.01, 64).unwrap();
        let b = QuantileSketch::new(0.02, 64).unwrap();
        assert!(matches!(a.merge(&b), Err(SketchError::Incompatible(_))));
    }

    #[test]
    fn codec_round_trip() {
        let mut s = QuantileSketch::default_sketch();
        for i in 0..200 {
            s.insert((i as f64 - 100.0) * 1.37);
        }
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let decoded = QuantileSketch::decode_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn decode_rejects_mismatched_totals() {
        let mut s = QuantileSketch::default_sketch();
        s.insert(1.0);
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt the total-count header (offset: f64 + u32 + u32 + u64 = 24).
        bytes[24] ^= 0xFF;
        assert!(QuantileSketch::decode_from(&mut ByteReader::new(&bytes)).is_err());
    }
}

//! SpaceSaving heavy-hitter summary (Metwally et al.).
//!
//! Tracks at most `k` keys. A monitored key's counter never
//! undercounts: `true ≤ count ≤ true + err` with `err ≤ n/k`, and any
//! key whose true frequency exceeds `n/k` is guaranteed to be present.
//! Merging follows the mergeable-summaries construction: counts and
//! error bounds add for common keys, a key absent from a full summary
//! contributes that summary's minimum counter as both count and error,
//! and the union is truncated back to the top `k`.

use std::collections::HashMap;

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{ErrorBound, SketchError};
use crate::Result;

/// One monitored key with its (over-)count and error allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter {
    /// The tracked key.
    pub key: String,
    /// Estimated count; never less than the true count.
    pub count: u64,
    /// Maximum possible overcount: `true ≥ count − err`.
    pub err: u64,
}

/// SpaceSaving summary over string keys.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSaving {
    capacity: usize,
    entries: HashMap<String, (u64, u64)>,
    n: u64,
}

impl SpaceSaving {
    /// Default capacity: track up to 64 keys (`err ≤ n/64`).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Summary with [`Self::DEFAULT_CAPACITY`].
    pub fn default_sketch() -> Self {
        Self::new(Self::DEFAULT_CAPACITY).expect("default capacity is valid")
    }

    /// Build a summary tracking at most `capacity ≥ 1` keys.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(SketchError::BadConfig("capacity must be >= 1"));
        }
        Ok(Self { capacity, entries: HashMap::new(), n: 0 })
    }

    /// Total weight offered so far.
    pub fn total(&self) -> u64 {
        self.n
    }

    /// The configured key capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The worst-case overcount for any reported key: `n/k`.
    pub fn error_bound(&self) -> ErrorBound {
        ErrorBound::AbsoluteCount(self.n as f64 / self.capacity as f64)
    }

    /// Smallest monitored counter (0 while under capacity) — the
    /// ceiling on any unmonitored key's true count.
    fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity {
            0
        } else {
            self.entries.values().map(|&(c, _)| c).min().unwrap_or(0)
        }
    }

    /// Offer `key` with weight `w`.
    pub fn insert(&mut self, key: &str, w: u64) {
        self.n += w;
        if let Some((c, _)) = self.entries.get_mut(key) {
            *c += w;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key.to_string(), (w, 0));
            return;
        }
        // Evict the minimum entry; the newcomer inherits its counter as
        // possible overcount.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(k, &(c, _))| (c, (*k).clone()))
            .map(|(k, &(c, _))| (k.clone(), c))
            .expect("summary at capacity is non-empty");
        self.entries.remove(&victim.0);
        self.entries.insert(key.to_string(), (victim.1 + w, victim.1));
    }

    /// Merge `other` into `self` and truncate back to capacity.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(SketchError::Incompatible("SpaceSaving summaries with different capacity"));
        }
        let self_min = self.min_count();
        let other_min = other.min_count();
        let mut union: HashMap<String, (u64, u64)> = HashMap::new();
        for (k, &(c, e)) in &self.entries {
            let (oc, oe) = other.entries.get(k).copied().unwrap_or((other_min, other_min));
            union.insert(k.clone(), (c + oc, e + oe));
        }
        for (k, &(c, e)) in &other.entries {
            union.entry(k.clone()).or_insert((c + self_min, e + self_min));
        }
        let mut ranked: Vec<(String, (u64, u64))> = union.into_iter().collect();
        // Deterministic order: count desc, then key asc.
        ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.capacity);
        self.entries = ranked.into_iter().collect();
        self.n += other.n;
        Ok(())
    }

    /// Estimated count and error for `key`, if monitored.
    pub fn get(&self, key: &str) -> Option<HeavyHitter> {
        self.entries.get(key).map(|&(count, err)| HeavyHitter { key: key.to_string(), count, err })
    }

    /// All monitored keys, count-descending (ties broken by key).
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let mut out: Vec<HeavyHitter> = self
            .entries
            .iter()
            .map(|(k, &(count, err))| HeavyHitter { key: k.clone(), count, err })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// Keys whose *guaranteed* count (`count − err`) meets `threshold`.
    pub fn guaranteed_above(&self, threshold: u64) -> Vec<HeavyHitter> {
        self.heavy_hitters().into_iter().filter(|h| h.count - h.err >= threshold).collect()
    }

    /// Serialize to the pinned little-endian wire form.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.capacity as u32);
        w.put_u64(self.n);
        let hitters = self.heavy_hitters(); // deterministic order
        w.put_u32(hitters.len() as u32);
        for h in hitters {
            w.put_bytes(h.key.as_bytes());
            w.put_u64(h.count);
            w.put_u64(h.err);
        }
    }

    /// Decode from the wire form produced by [`Self::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let capacity = r.get_u32()? as usize;
        let mut s = Self::new(capacity)?;
        s.n = r.get_u64()?;
        let len = r.get_u32()? as usize;
        if len > capacity {
            return Err(SketchError::Corrupt(format!("{len} entries exceed capacity {capacity}")));
        }
        for _ in 0..len {
            let key = std::str::from_utf8(r.get_bytes()?)
                .map_err(|_| SketchError::Corrupt("non-UTF-8 key".into()))?
                .to_string();
            let count = r.get_u64()?;
            let err = r.get_u64()?;
            if err > count {
                return Err(SketchError::Corrupt("error bound exceeds count".into()));
            }
            s.entries.insert(key, (count, err));
        }
        Ok(s)
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.keys().map(|k| k.len() + 48).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(10).unwrap();
        for _ in 0..5 {
            s.insert("a", 1);
        }
        s.insert("b", 3);
        let a = s.get("a").unwrap();
        assert_eq!((a.count, a.err), (5, 0));
        let hh = s.heavy_hitters();
        assert_eq!(hh[0].key, "a");
        assert_eq!(hh[1].key, "b");
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn guarantee_holds_under_eviction() {
        let mut s = SpaceSaving::new(4).unwrap();
        let mut truth: HashMap<&str, u64> = HashMap::new();
        let keys = ["a", "b", "c", "d", "e", "f", "g", "h"];
        // Skewed stream: key index i appears 2^i times.
        for (i, k) in keys.iter().enumerate() {
            for _ in 0..(1u64 << i) {
                s.insert(k, 1);
                *truth.entry(k).or_insert(0) += 1;
            }
        }
        let n = s.total();
        let k = s.capacity() as u64;
        for h in s.heavy_hitters() {
            let t = truth[h.key.as_str()];
            assert!(h.count >= t, "never undercounts: {} {} < {}", h.key, h.count, t);
            assert!(h.count - h.err <= t, "lower bound holds for {}", h.key);
            assert!(h.err <= n / k, "err {} > n/k {}", h.err, n / k);
        }
        // Every key with true frequency > n/k must be monitored.
        for (key, &t) in &truth {
            if t > n / k {
                assert!(s.get(key).is_some(), "frequent key {key} missing");
            }
        }
    }

    #[test]
    fn merge_preserves_heavy_hitters() {
        let mut a = SpaceSaving::new(8).unwrap();
        let mut b = SpaceSaving::new(8).unwrap();
        let mut truth: HashMap<String, u64> = HashMap::new();
        for i in 0..2000u64 {
            // Zipf-ish: low keys dominate.
            let key = format!("k{}", (i * i + i) % 37 % (1 + i % 13));
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.insert(&key, 1);
            *truth.entry(key).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        let n = a.total();
        assert_eq!(n, 2000);
        let k = a.capacity() as u64;
        for h in a.heavy_hitters() {
            let t = truth.get(h.key.as_str()).copied().unwrap_or(0);
            assert!(h.count >= t, "merged count undercounts {}", h.key);
        }
        for (key, &t) in &truth {
            if t > 2 * n / k {
                assert!(a.get(key).is_some(), "very frequent key {key} missing after merge");
            }
        }
    }

    #[test]
    fn codec_round_trip() {
        let mut s = SpaceSaving::new(4).unwrap();
        for (i, k) in ["x", "y", "z", "w", "v"].iter().enumerate() {
            s.insert(k, i as u64 + 1);
        }
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let d = SpaceSaving::decode_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(d.heavy_hitters(), s.heavy_hitters());
        assert_eq!(d.total(), s.total());
    }

    #[test]
    fn mismatched_capacity_refuses() {
        let mut a = SpaceSaving::new(4).unwrap();
        let b = SpaceSaving::new(8).unwrap();
        assert!(a.merge(&b).is_err());
    }
}

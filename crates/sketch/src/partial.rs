//! [`SketchPartial`] — the uniform per-chunk sketch state the aggregate
//! layer carries alongside its fixed-size `AggState` partials. One
//! variant per value-sketch family, with a tagged byte codec so
//! partials can be shipped or persisted without knowing the variant
//! up front.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{ErrorBound, SketchError};
use crate::hll::HyperLogLog;
use crate::quantile::QuantileSketch;
use crate::Result;

const TAG_QUANTILE: u8 = 1;
const TAG_DISTINCT: u8 = 2;

/// A per-partition sketch state for one group's values.
///
/// Unlike `AggState` (a fixed 4-float register file), a sketch partial
/// owns heap state, so it lives in a parallel side-car structure; the
/// enum keeps the window layer agnostic of which sketch an aggregate
/// uses.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchPartial {
    /// Log-bucket quantile sketch (MEDIAN / PERCENTILE family).
    Quantile(QuantileSketch),
    /// HyperLogLog++ (COUNT DISTINCT family).
    Distinct(HyperLogLog),
}

impl SketchPartial {
    /// Offer one value to the sketch.
    pub fn insert(&mut self, v: f64) {
        match self {
            SketchPartial::Quantile(s) => s.insert(v),
            SketchPartial::Distinct(s) => s.insert_f64(v),
        }
    }

    /// Merge a same-variant partial into this one.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        match (self, other) {
            (SketchPartial::Quantile(a), SketchPartial::Quantile(b)) => a.merge(b),
            (SketchPartial::Distinct(a), SketchPartial::Distinct(b)) => a.merge(b),
            _ => Err(SketchError::Incompatible("sketch partials of different variants")),
        }
    }

    /// Subtract a same-variant partial, if this family supports
    /// retraction. Returns `Ok(true)` when the retraction was applied,
    /// `Ok(false)` when the family is merge-only (HLL) and the caller
    /// must re-merge surviving partials instead.
    pub fn retract(&mut self, other: &Self) -> Result<bool> {
        match (self, other) {
            (SketchPartial::Quantile(a), SketchPartial::Quantile(b)) => {
                a.retract(b)?;
                Ok(true)
            }
            (SketchPartial::Distinct(_), SketchPartial::Distinct(_)) => Ok(false),
            _ => Err(SketchError::Incompatible("sketch partials of different variants")),
        }
    }

    /// Whether this family supports retraction.
    pub fn retractable(&self) -> bool {
        matches!(self, SketchPartial::Quantile(_))
    }

    /// The current error bound of the underlying sketch.
    pub fn error_bound(&self) -> ErrorBound {
        match self {
            SketchPartial::Quantile(s) => s.error_bound(),
            SketchPartial::Distinct(s) => s.error_bound(),
        }
    }

    /// A fresh empty partial of the same variant and configuration.
    pub fn fresh(&self) -> Self {
        match self {
            SketchPartial::Quantile(s) => SketchPartial::Quantile(s.fresh()),
            SketchPartial::Distinct(s) => SketchPartial::Distinct(
                HyperLogLog::new(s.precision()).expect("precision already validated"),
            ),
        }
    }

    /// Serialize with a variant tag.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            SketchPartial::Quantile(s) => {
                w.put_u8(TAG_QUANTILE);
                s.encode_into(&mut w);
            }
            SketchPartial::Distinct(s) => {
                w.put_u8(TAG_DISTINCT);
                s.encode_into(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Decode a tagged partial produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        match r.get_u8()? {
            TAG_QUANTILE => Ok(SketchPartial::Quantile(QuantileSketch::decode_from(&mut r)?)),
            TAG_DISTINCT => Ok(SketchPartial::Distinct(HyperLogLog::decode_from(&mut r)?)),
            tag => Err(SketchError::Corrupt(format!("unknown sketch partial tag {tag}"))),
        }
    }

    /// Approximate heap footprint in bytes (for resident accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            SketchPartial::Quantile(s) => s.approx_bytes(),
            SketchPartial::Distinct(s) => s.approx_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_partial_round_trip() {
        let mut p = SketchPartial::Quantile(QuantileSketch::default_sketch());
        for i in 0..100 {
            p.insert(i as f64);
        }
        let bytes = p.encode();
        assert_eq!(SketchPartial::decode(&bytes).unwrap(), p);
        assert!(p.retractable());
    }

    #[test]
    fn distinct_partial_round_trip_and_merge_only() {
        let mut p = SketchPartial::Distinct(HyperLogLog::new(8).unwrap());
        for i in 0..100 {
            p.insert(i as f64);
        }
        let bytes = p.encode();
        let d = SketchPartial::decode(&bytes).unwrap();
        assert_eq!(d, p);
        assert!(!p.retractable());
        let other = d.clone();
        let mut p2 = p.clone();
        assert!(!p2.retract(&other).unwrap());
    }

    #[test]
    fn cross_variant_merge_refuses() {
        let mut q = SketchPartial::Quantile(QuantileSketch::default_sketch());
        let d = SketchPartial::Distinct(HyperLogLog::new(8).unwrap());
        assert!(q.merge(&d).is_err());
        assert!(q.retract(&d).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(SketchPartial::decode(&[99, 0, 0]).is_err());
        assert!(SketchPartial::decode(&[]).is_err());
    }
}

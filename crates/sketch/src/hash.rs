//! Deterministic 64-bit hashing. Sketch identity must be stable across
//! processes and runs, so the hash functions are pinned here instead of
//! going through `std`'s randomized `DefaultHasher`.

/// SplitMix64 finalizer: a fast, well-distributed bijection on `u64`.
/// Used to turn raw value bits into register/bucket assignments.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, finished through [`splitmix64`] for avalanche.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// Canonical bit pattern of an `f64` for hashing: `-0.0` folds onto
/// `0.0` and every NaN folds onto one canonical NaN, so values that
/// compare equal (or are equally "missing") hash equal.
#[inline]
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Consecutive inputs land far apart.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_eq!(fnv1a64(b""), fnv1a64(b""));
    }

    #[test]
    fn canonical_bits_fold_zero_and_nan() {
        assert_eq!(canonical_f64_bits(0.0), canonical_f64_bits(-0.0));
        assert_eq!(canonical_f64_bits(f64::NAN), canonical_f64_bits(-f64::NAN));
        assert_ne!(canonical_f64_bits(1.0), canonical_f64_bits(2.0));
    }
}

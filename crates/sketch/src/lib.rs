//! # scorpion-sketch
//!
//! Dependency-free probabilistic sketches backing Scorpion's streaming
//! layer: bounded-size summaries that are **mergeable** (chunk partials
//! combine without re-reading rows), where possible **retractable**
//! (an expired chunk's partial can be subtracted), and always carry a
//! **runtime-queryable error bound**. Three summaries:
//!
//! * [`QuantileSketch`] — a UDD/DDSketch-style log-bucketed quantile
//!   summary with a *relative value* guarantee: any reported quantile
//!   `x̂` satisfies `|x̂ − x| ≤ α·|x|` against the exact quantile `x`
//!   (same rank definition). Bucket counts form a group, so `retract`
//!   is an **exact** inverse of `merge` at matched compaction levels;
//!   when the bucket budget overflows, adjacent buckets collapse
//!   pairwise and `α` grows — [`QuantileSketch::alpha`] always reports
//!   the *current* guarantee.
//! * [`HyperLogLog`] — HLL++-style dense distinct counting with
//!   register-max merge and a `≈1.04/√m` relative standard error.
//!   Not retractable (register max is a semilattice, not a group);
//!   windows recover eviction by re-merging surviving partials.
//! * [`SpaceSaving`] — heavy-hitter summary over string keys with the
//!   classic guarantee `true ≤ count ≤ true + n/k` and a lossless-ish
//!   mergeable form (counts add, error bounds add).
//!
//! [`SketchPartial`] packages the value-sketches behind one enum with a
//! portable byte codec, so aggregate operators can treat "a sketch
//! partial" uniformly (the shape `scorpion-agg` exposes through its
//! `SketchAggregate` trait).
//!
//! Everything here is deterministic: fixed hash functions, no RNG, no
//! time — two processes that ingest the same values produce bit-equal
//! sketches, which is what makes partials safe to ship and diff.

#![warn(missing_docs)]

mod codec;
mod error;
mod hash;
mod hll;
mod partial;
mod quantile;
mod spacesaving;

pub use codec::{ByteReader, ByteWriter};
pub use error::{ErrorBound, SketchError};
pub use hash::{fnv1a64, splitmix64};
pub use hll::HyperLogLog;
pub use partial::SketchPartial;
pub use quantile::QuantileSketch;
pub use spacesaving::{HeavyHitter, SpaceSaving};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SketchError>;

//! A tiny little-endian byte codec for sketch partials. Partials cross
//! crate and (eventually) process boundaries, so the wire form is pinned
//! here rather than relying on in-memory layout.

use crate::{Result, SketchError};

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer and return the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based reader matching [`ByteWriter`]'s layout.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SketchError::Corrupt(format!(
                "need {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its little-endian bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.get_u64().is_err());
    }
}

//! Dense HyperLogLog++ distinct counting.
//!
//! `m = 2^precision` one-byte registers; each hashed value selects a
//! register with its top `precision` bits and offers the position of
//! the first set bit in the rest. The harmonic-mean estimator with the
//! HLL++ small-range (linear counting) correction gives a relative
//! standard error of `≈ 1.04/√m`. Merge is register-wise max — a
//! semilattice, not a group, so there is **no retract**: windows
//! rebuild eviction by re-merging the surviving chunk partials, the
//! same path the exact MIN/MAX aggregates already take.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{ErrorBound, SketchError};
use crate::hash::{canonical_f64_bits, splitmix64};
use crate::Result;

/// Dense HyperLogLog++ sketch for approximate distinct counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Default precision: 2^12 = 4096 registers, ≈1.6% standard error.
    pub const DEFAULT_PRECISION: u8 = 12;

    /// Sketch with [`Self::DEFAULT_PRECISION`].
    pub fn default_sketch() -> Self {
        Self::new(Self::DEFAULT_PRECISION).expect("default precision is valid")
    }

    /// Build a sketch with `2^precision` registers, `precision ∈ [4, 18]`.
    pub fn new(precision: u8) -> Result<Self> {
        if !(4..=18).contains(&precision) {
            return Err(SketchError::BadConfig("precision must be in [4, 18]"));
        }
        Ok(Self { precision, registers: vec![0; 1 << precision] })
    }

    /// Number of registers `m`.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// The configured precision `p`.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Relative standard error `1.04/√m`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// The probabilistic guarantee on [`Self::estimate`].
    pub fn error_bound(&self) -> ErrorBound {
        ErrorBound::RelativeStdDev(self.relative_error())
    }

    /// Offer a pre-hashed 64-bit value.
    pub fn insert_hash(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        let rest = h << p;
        // Rank of the first set bit in the remaining 64−p bits, in 1..=64−p+1.
        let rho = if rest == 0 { 64 - p + 1 } else { rest.leading_zeros() + 1 } as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Offer an `f64` (canonicalized so `-0.0 ≡ 0.0` and all NaNs
    /// collapse to one identity).
    pub fn insert_f64(&mut self, v: f64) {
        self.insert_hash(splitmix64(canonical_f64_bits(v)));
    }

    /// Offer raw bytes (e.g. a group key).
    pub fn insert_bytes(&mut self, bytes: &[u8]) {
        self.insert_hash(crate::hash::fnv1a64(bytes));
    }

    /// Estimate the number of distinct values offered so far.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            len => 0.7213 / (1.0 + 1.079 / len as f64),
        };
        let mut sum = 0.0f64;
        let mut zeros = 0u64;
        for &r in &self.registers {
            sum += 2f64.powi(-(r as i32));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// `true` when nothing has been offered.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Merge `other` into `self` (register-wise max). Fails if the
    /// precisions differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.precision != other.precision {
            return Err(SketchError::Incompatible("HLL sketches with different precision"));
        }
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if b > *a {
                *a = b;
            }
        }
        Ok(())
    }

    /// Serialize to the pinned little-endian wire form.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u8(self.precision);
        w.put_bytes(&self.registers);
    }

    /// Decode from the wire form produced by [`Self::encode_into`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let precision = r.get_u8()?;
        let mut s = Self::new(precision)?;
        let regs = r.get_bytes()?;
        if regs.len() != s.registers.len() {
            return Err(SketchError::Corrupt(format!(
                "register payload is {} bytes, precision {} implies {}",
                regs.len(),
                precision,
                s.registers.len()
            )));
        }
        let max_rho = 64 - precision as u32 + 1;
        for (slot, &b) in s.registers.iter_mut().zip(regs) {
            if b as u32 > max_rho {
                return Err(SketchError::Corrupt(format!("register value {b} out of range")));
            }
            *slot = b;
        }
        Ok(s)
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let s = HyperLogLog::default_sketch();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut s = HyperLogLog::default_sketch();
        for i in 0..100 {
            s.insert_f64(i as f64);
            s.insert_f64(i as f64); // duplicates must not inflate
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 3.0, "est {est}");
    }

    #[test]
    fn large_cardinality_within_three_sigma() {
        let mut s = HyperLogLog::default_sketch();
        let n = 50_000u64;
        for i in 0..n {
            s.insert_f64(i as f64 * 1.000_001);
        }
        let est = s.estimate();
        let tol = 3.0 * s.relative_error() * n as f64;
        assert!((est - n as f64).abs() < tol, "est {est} n {n} tol {tol}");
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = HyperLogLog::default_sketch();
        let mut a = HyperLogLog::default_sketch();
        let mut b = HyperLogLog::default_sketch();
        for i in 0..10_000 {
            let v = i as f64 * 0.33;
            all.insert_f64(v);
            if i % 3 == 0 {
                a.insert_f64(v);
            } else {
                b.insert_f64(v);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a, all);
    }

    #[test]
    fn mismatched_precision_refuses() {
        let mut a = HyperLogLog::new(10).unwrap();
        let b = HyperLogLog::new(12).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn codec_round_trip_and_validation() {
        let mut s = HyperLogLog::new(8).unwrap();
        for i in 0..1000 {
            s.insert_f64(i as f64);
        }
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let d = HyperLogLog::decode_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(d, s);

        let mut bad = bytes.clone();
        bad[7] = 200; // register value way out of range
        assert!(HyperLogLog::decode_from(&mut ByteReader::new(&bad)).is_err());
    }

    #[test]
    fn zero_and_negative_zero_count_once() {
        let mut s = HyperLogLog::default_sketch();
        s.insert_f64(0.0);
        s.insert_f64(-0.0);
        let est = s.estimate();
        assert!((est - 1.0).abs() < 0.5, "est {est}");
    }
}

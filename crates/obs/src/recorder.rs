//! The global span recorder: fine-grained, off-by-default tracing.
//!
//! Span sites call [`Recorder::start`] (usually via the [`span!`]
//! macro) and hold the returned guard for the scope's duration. While
//! the recorder is disabled — the default — `start` is one relaxed
//! atomic load and the guard is inert: no clock read, no allocation.
//! Enabled, finished spans land in a thread-local buffer that flushes
//! to a bounded global ring; [`Recorder::drain`] takes the ring for
//! export (e.g. as a Chrome trace).
//!
//! [`span!`]: crate::span

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A completed span: name, start offset from the recorder epoch, and
/// duration, both in microseconds, plus the recording thread's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span name as passed to [`Recorder::start`].
    pub name: &'static str,
    /// Start time, microseconds since the recorder was first enabled.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small dense id of the recording thread (assigned on first use).
    pub tid: u64,
}

/// Spans the global ring retains before dropping the oldest.
const RING_CAPACITY: usize = 1 << 16;
/// Thread-local buffer size that triggers a flush to the ring.
const FLUSH_AT: usize = 64;

/// The global span recorder. One instance per process, reached via
/// [`recorder`].
pub struct Recorder {
    enabled: AtomicBool,
    ring: Mutex<Vec<Span>>,
    dropped: AtomicU64,
    next_tid: AtomicU64,
}

static RECORDER: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    ring: Mutex::new(Vec::new()),
    dropped: AtomicU64::new(0),
    next_tid: AtomicU64::new(1),
};

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide recorder.
pub fn recorder() -> &'static Recorder {
    &RECORDER
}

struct ThreadBuf {
    tid: u64,
    spans: Vec<Span>,
}

impl Drop for ThreadBuf {
    // Worker threads (e.g. scoped scoring threads) exit before the
    // request drains the ring; hand their tail of spans over on the
    // way out.
    fn drop(&mut self) {
        if !self.spans.is_empty() {
            RECORDER.push_all(&mut self.spans);
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: RECORDER.next_tid.fetch_add(1, Ordering::Relaxed),
        spans: Vec::new(),
    });
}

impl Recorder {
    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on (idempotent). Fixes the trace epoch on first
    /// call.
    pub fn enable(&self) {
        EPOCH.get_or_init(Instant::now);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Already-buffered spans stay drainable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Opens a span scope. The returned guard records the span when
    /// dropped; inert (no clock read) while the recorder is disabled.
    #[inline]
    pub fn start(&self, name: &'static str) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard { name, start: None };
        }
        SpanGuard { name, start: Some(Instant::now()) }
    }

    /// Takes all completed spans (flushing the calling thread's buffer
    /// first), ordered by flush time. Spans still buffered on *other*
    /// live threads are not included until those threads flush.
    pub fn drain(&self) -> Vec<Span> {
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            if !b.spans.is_empty() {
                let mut spans = std::mem::take(&mut b.spans);
                self.push_all(&mut spans);
            }
        });
        std::mem::take(&mut self.ring.lock().expect("span ring"))
    }

    /// Spans dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn push_all(&self, spans: &mut Vec<Span>) {
        let mut ring = self.ring.lock().expect("span ring");
        ring.append(spans);
        if ring.len() > RING_CAPACITY {
            let overflow = ring.len() - RING_CAPACITY;
            ring.drain(..overflow);
            self.dropped.fetch_add(overflow as u64, Ordering::Relaxed);
        }
    }

    fn finish(&self, name: &'static str, start: Instant) {
        let epoch = *EPOCH.get_or_init(Instant::now);
        let span = Span {
            name,
            start_us: start.saturating_duration_since(epoch).as_micros() as u64,
            dur_us: start.elapsed().as_micros() as u64,
            tid: 0,
        };
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let tid = b.tid;
            b.spans.push(Span { tid, ..span });
            if b.spans.len() >= FLUSH_AT {
                let mut spans = std::mem::take(&mut b.spans);
                self.push_all(&mut spans);
            }
        });
    }
}

/// RAII scope guard returned by [`Recorder::start`]; records the span
/// on drop.
#[must_use = "a span guard records on drop; binding it to _ closes the span immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            RECORDER.finish(self.name, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is a process-global; tests share it, so each test
    // serializes on a lock, filters for its own span names, and
    // restores the disabled state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_yields_no_spans() {
        let _g = test_lock();
        let r = recorder();
        r.disable();
        drop(r.start("obs.test.disabled"));
        assert!(!r.drain().iter().any(|s| s.name == "obs.test.disabled"));
    }

    #[test]
    fn enabled_recorder_captures_nested_spans() {
        let _g = test_lock();
        let r = recorder();
        r.enable();
        {
            let _outer = r.start("obs.test.outer");
            let _inner = r.start("obs.test.inner");
        }
        r.disable();
        let spans = r.drain();
        let outer = spans.iter().find(|s| s.name == "obs.test.outer").expect("outer span");
        let inner = spans.iter().find(|s| s.name == "obs.test.inner").expect("inner span");
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.dur_us <= outer.dur_us);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn worker_thread_spans_flush_on_exit() {
        let _g = test_lock();
        let r = recorder();
        r.enable();
        std::thread::spawn(|| {
            let _s = recorder().start("obs.test.worker");
        })
        .join()
        .unwrap();
        r.disable();
        let spans = r.drain();
        assert!(spans.iter().any(|s| s.name == "obs.test.worker"), "{spans:?}");
    }
}

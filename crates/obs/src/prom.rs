//! Prometheus text-exposition builder (format version 0.0.4): `# HELP`
//! / `# TYPE` headers, labeled samples, and histogram families with
//! cumulative `_bucket` series, `le="+Inf"`, `_sum`, and `_count`.

use crate::histogram::HistogramSnapshot;
use std::fmt::Write;

/// Accumulates an exposition document line by line.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Emits the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `"counter"`, `"gauge"`, or `"histogram"`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line, `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// Emits a full histogram family from a snapshot: cumulative
    /// `_bucket` lines for every non-empty bucket, a `le="+Inf"`
    /// terminator, `_sum`, and `_count`. Recorded sample values are
    /// multiplied by `scale` (e.g. `1e-6` to export microsecond
    /// recordings as seconds).
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        let mut cumulative = 0u64;
        for (upper, count) in snap.buckets() {
            cumulative += count;
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.push_labels(labels, Some(&fmt_value(upper as f64 * scale)));
            let _ = writeln!(self.out, " {cumulative}");
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.push_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {}", snap.count());
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {}", fmt_value(snap.sum() as f64 * scale));
        self.out.push_str(name);
        self.out.push_str("_count");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {}", snap.count());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }

    fn push_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().copied().chain(le.map(|v| ("le", v))) {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out.push_str(k);
            self.out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }
}

/// Formats a value the way Prometheus expects: integral values without
/// a fractional part, others in plain decimal.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn counters_and_gauges_render() {
        let mut p = PromText::new();
        p.header("scorpion_requests_total", "counter", "Requests handled.");
        p.sample("scorpion_requests_total", &[("endpoint", "explain")], 3.0);
        p.sample("scorpion_requests_total", &[("endpoint", "stats")], 1.0);
        let text = p.finish();
        assert!(text.contains("# TYPE scorpion_requests_total counter"));
        assert!(text.contains("scorpion_requests_total{endpoint=\"explain\"} 3\n"));
        assert!(text.contains("scorpion_requests_total{endpoint=\"stats\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_terminated() {
        let h = Histogram::new();
        for v in [5u64, 5, 100, 3000] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.header("d_seconds", "histogram", "Durations.");
        p.histogram("d_seconds", &[("endpoint", "explain")], &h.snapshot(), 1e-6);
        let text = p.finish();
        assert!(text.contains("le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("d_seconds_count{endpoint=\"explain\"} 4\n"));
        // Cumulative counts never decrease.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn unlabeled_sample_has_no_braces() {
        let mut p = PromText::new();
        p.sample("up", &[], 1.0);
        assert_eq!(p.finish(), "up 1\n");
    }
}

//! Named phase timers: coarse, always-on wall-clock attribution.
//!
//! A [`Phases`] accumulator lives wherever timing is collected (a
//! partitioner, a prepared plan) and aggregates `(nanos, count)` per
//! phase name. Snapshots come out as `Vec<PhaseTiming>` — the payload
//! of `Diagnostics.phases`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated wall-clock time of one named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name, dotted by convention (`"dt.split"`, `"run.merge"`).
    pub name: &'static str,
    /// Total nanoseconds spent in the phase.
    pub nanos: u64,
    /// Number of times the phase ran.
    pub count: u64,
}

impl PhaseTiming {
    /// A single-run timing of `elapsed` wall-clock time.
    pub fn once(name: &'static str, elapsed: Duration) -> Self {
        PhaseTiming { name, nanos: elapsed.as_nanos() as u64, count: 1 }
    }

    /// Total time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Merges `src` into `dst`, summing nanos/count of same-named phases
/// and preserving first-seen order.
pub fn merge_phases(dst: &mut Vec<PhaseTiming>, src: impl IntoIterator<Item = PhaseTiming>) {
    for p in src {
        match dst.iter_mut().find(|d| d.name == p.name) {
            Some(d) => {
                d.nanos += p.nanos;
                d.count += p.count;
            }
            None => dst.push(p),
        }
    }
}

/// A thread-safe phase-timing accumulator. Interior mutability so
/// `&self` methods deep inside an engine can record; the phase list is
/// short (tens of entries), so a mutex-guarded vec is cheap.
#[derive(Debug, Default)]
pub struct Phases {
    inner: Mutex<Vec<PhaseTiming>>,
}

impl Phases {
    /// An empty accumulator.
    pub fn new() -> Self {
        Phases::default()
    }

    /// Adds one elapsed duration to `name`.
    pub fn add(&self, name: &'static str, elapsed: Duration) {
        self.add_nanos(name, elapsed.as_nanos() as u64, 1);
    }

    /// Adds raw `(nanos, count)` to `name`.
    pub fn add_nanos(&self, name: &'static str, nanos: u64, count: u64) {
        let mut inner = self.inner.lock().expect("phases lock");
        merge_phases(&mut inner, [PhaseTiming { name, nanos, count }]);
    }

    /// Runs `f`, charging its wall-clock time to `name`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed());
        out
    }

    /// Merges a list of timings (e.g. another accumulator's snapshot).
    pub fn extend(&self, items: impl IntoIterator<Item = PhaseTiming>) {
        let mut inner = self.inner.lock().expect("phases lock");
        merge_phases(&mut inner, items);
    }

    /// A copy of the accumulated timings, in first-recorded order.
    pub fn snapshot(&self) -> Vec<PhaseTiming> {
        self.inner.lock().expect("phases lock").clone()
    }

    /// Takes the accumulated timings, leaving the accumulator empty.
    pub fn take(&self) -> Vec<PhaseTiming> {
        std::mem::take(&mut self.inner.lock().expect("phases lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_name() {
        let p = Phases::new();
        p.add_nanos("a", 10, 1);
        p.add_nanos("b", 5, 1);
        p.add_nanos("a", 30, 2);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], PhaseTiming { name: "a", nanos: 40, count: 3 });
        assert_eq!(snap[1].name, "b");
    }

    #[test]
    fn time_charges_the_closure() {
        let p = Phases::new();
        let v = p.time("work", || 7);
        assert_eq!(v, 7);
        let snap = p.snapshot();
        assert_eq!(snap[0].count, 1);
    }

    #[test]
    fn take_drains() {
        let p = Phases::new();
        p.add_nanos("a", 1, 1);
        assert_eq!(p.take().len(), 1);
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn merge_preserves_order() {
        let mut dst = vec![PhaseTiming { name: "x", nanos: 1, count: 1 }];
        merge_phases(
            &mut dst,
            [
                PhaseTiming { name: "y", nanos: 2, count: 1 },
                PhaseTiming { name: "x", nanos: 3, count: 1 },
            ],
        );
        assert_eq!(dst[0], PhaseTiming { name: "x", nanos: 4, count: 2 });
        assert_eq!(dst[1].name, "y");
    }
}

//! Chrome trace-event export: completed spans become an array of
//! `"ph": "X"` (complete) events that `chrome://tracing` and Perfetto
//! load directly. One process (`pid` 1); `tid` is the recorder's
//! per-thread id, so worker threads stack as separate rows.

use crate::recorder::Span;
use std::io;
use std::path::Path;

/// Renders spans as a Chrome trace JSON document.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        for c in s.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            s.tid, s.start_us, s.dur_us
        ));
    }
    out.push_str("]}");
    out
}

/// Writes spans as a Chrome trace JSON file at `path`.
pub fn write_chrome_trace(path: &Path, spans: &[Span]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_events() {
        let spans = [
            Span { name: "prepare", start_us: 0, dur_us: 100, tid: 1 },
            Span { name: "dt.split", start_us: 10, dur_us: 20, tid: 2 },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"prepare\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":20"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }
}

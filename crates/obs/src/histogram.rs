//! Log-scale histogram: HDR-style power-of-two octaves subdivided into
//! 16 linear sub-buckets, giving a worst-case relative error of 1/16
//! (6.25%) on any reported quantile while covering the full `u64`
//! range in under a thousand buckets (~8 KB of counters).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave.
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count: values `0..16` get exact unit buckets, then 60
/// octaves of 16 sub-buckets cover the rest of the `u64` range.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS + 1) * SUB_COUNT as u32) as usize;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let base = (exp - SUB_BITS + 1) * SUB_COUNT as u32;
        let sub = (v >> (exp - SUB_BITS)) - SUB_COUNT;
        base as usize + sub as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < SUB_COUNT as usize {
        (i as u64, i as u64)
    } else {
        let exp = (i / SUB_COUNT as usize) as u32 + SUB_BITS - 1;
        let sub = (i % SUB_COUNT as usize) as u64;
        let shift = exp - SUB_BITS;
        let lo = (SUB_COUNT + sub) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// A lock-free log-scale histogram of `u64` samples (typically
/// latencies in microseconds). Recording is a relaxed `fetch_add` on
/// one bucket plus the count/sum/max scalars; reading takes a
/// [`HistogramSnapshot`].
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters. Not atomic across buckets
    /// under concurrent recording — each counter is individually
    /// consistent, which is all quantile reporting needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s counters: mergeable, quantile-
/// extractable, serializable by callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot::default()
    }

    /// Adds another snapshot's samples into this one. Merging two
    /// snapshots is equivalent to having recorded both sample streams
    /// into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        // Wrapping, to match the atomic `fetch_add` a live histogram
        // uses for its sum.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the target sample, clamped to the exact max. Within
    /// 1/16 relative error of the true quantile; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, in
    /// increasing bound order. Counts are per-bucket, not cumulative.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_partition_the_range() {
        // Every bucket's upper + 1 is the next bucket's lower.
        let mut prev_hi = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_hi = Some(hi);
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                break;
            }
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        let p50 = s.quantile(0.5);
        assert!((468..=532).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((928..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_addition() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [3u64, 17, 17, 40_000] {
            a.record(v);
        }
        for v in [5u64, 17, 1 << 40] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 7);
        assert_eq!(m.sum(), 3 + 17 + 17 + 40_000 + 5 + 17 + (1 << 40));
        assert_eq!(m.max(), 1 << 40);
    }
}

//! Dependency-free observability for the Scorpion workspace.
//!
//! Four small pieces, designed to be cheap enough to leave compiled
//! into the hot path:
//!
//! - [`Histogram`]: a log-scale (HDR-style, power-of-two octaves with
//!   sub-buckets) latency histogram with lock-free recording,
//!   mergeable [`HistogramSnapshot`]s, and quantile extraction.
//! - [`Phases`] / [`PhaseTiming`]: named monotonic-clock phase timers
//!   that accumulate `(nanos, count)` per phase — the data behind
//!   `Diagnostics.phases` and the CLI `--verbose` table.
//! - [`Recorder`] / [`span!`]: a global span recorder with RAII scope
//!   guards. Disabled (the default) it costs one relaxed atomic load
//!   per span site; enabled it buffers spans thread-locally and
//!   flushes them to a bounded global ring.
//! - [`chrome_trace_json`] and [`PromText`]: export completed spans as
//!   Chrome `chrome://tracing` JSON, and counters/gauges/histograms as
//!   Prometheus text exposition.
//! - [`Telemetry`] / [`telemetry`]: the flight recorder — a bounded
//!   ring of per-request [`TelemetryEvent`]s (one per server request,
//!   CLI run, or continuous-session slide) that the engine can later
//!   explain like any other relation.

#![warn(missing_docs)]

mod histogram;
mod phase;
mod prom;
mod recorder;
mod telemetry;
mod trace;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use phase::{merge_phases, PhaseTiming, Phases};
pub use prom::PromText;
pub use recorder::{recorder, Recorder, Span, SpanGuard};
pub use telemetry::{
    next_trace_id, telemetry, CacheHit, Telemetry, TelemetryEvent, DEFAULT_TELEMETRY_EVENTS,
};
pub use trace::{chrome_trace_json, write_chrome_trace};

/// Opens a named span scope on the global [`Recorder`], returning the
/// RAII guard. Bind it to keep the span open for the rest of the block:
///
/// ```
/// let _span = scorpion_obs::span!("dt.split");
/// ```
///
/// When the recorder is disabled (the default) this is one relaxed
/// atomic load and no clock read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::recorder().start($name)
    };
}

//! The flight recorder: a bounded ring of per-request telemetry events.
//!
//! Where the span [`crate::Recorder`] answers "where did *this* run
//! spend its time", the flight recorder answers "what did the *service*
//! do lately": one compact [`TelemetryEvent`] per completed request
//! (server), run (CLI), or slide (continuous session), kept in a
//! bounded ring that new events overwrite oldest-first. The ring is the
//! substrate of the self-explain loop — `Telemetry::to_table()` (in
//! `scorpion-core`, which can see the table crate) materializes it as a
//! relation the engine itself can explain.
//!
//! Cost model mirrors the span recorder: while disabled (the default),
//! [`Telemetry::record`] is one relaxed atomic load and an immediate
//! return. Enabled, a writer claims a slot with one `fetch_add` and
//! stores the event under that slot's (uncontended) lock — writers
//! never contend on a shared lock, and the ring never exceeds its
//! bound.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity in events.
pub const DEFAULT_TELEMETRY_EVENTS: usize = 4096;

/// What a request observed about one cache layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheHit {
    /// The cache answered.
    Hit,
    /// The cache was consulted and missed.
    Miss,
    /// The path has no such cache (e.g. a one-shot CLI run has no plan
    /// cache).
    Off,
}

impl CacheHit {
    /// The flag as a categorical column value.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheHit::Hit => "hit",
            CacheHit::Miss => "miss",
            CacheHit::Off => "off",
        }
    }

    /// `Hit` when `hit`, else `Miss`.
    pub fn from_flag(hit: bool) -> CacheHit {
        if hit {
            CacheHit::Hit
        } else {
            CacheHit::Miss
        }
    }
}

/// One completed request/run/slide, as the flight recorder keeps it.
///
/// Every field is either a small categorical dimension (what kind of
/// work was this) or a numeric measure (what did it cost) — exactly the
/// split `scorpion-core`'s `to_table` adapter needs to turn the ring
/// into an explainable relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Process-wide request trace id (the `x-scorpion-trace-id` value).
    pub trace_id: u64,
    /// Which surface handled the work (`"explain"`, `"cli.explain"`,
    /// `"stream.slide"`, …).
    pub endpoint: String,
    /// Table the request ran against (`"-"` when not applicable).
    pub table: String,
    /// Registry generation of that table (0 when not applicable).
    pub generation: u64,
    /// Resolved algorithm (`"dt"`, `"mc"`, `"naive"`, `"dt-stream"`,
    /// `"-"` for non-explain endpoints).
    pub algorithm: String,
    /// Aggregate operator name (`"avg"`, `"p99"`, `"-"`).
    pub aggregate: String,
    /// Plan-cache observation.
    pub plan_cache: CacheHit,
    /// Influence-cache observation (hit when any lookup was answered).
    pub influence_cache: CacheHit,
    /// Clause-mask-cache observation.
    pub mask_cache: CacheHit,
    /// Microseconds the request waited for a worker before running.
    pub queue_wait_us: u64,
    /// Per-phase microseconds from the run's `Phases` attribution.
    pub phases_us: Vec<(&'static str, u64)>,
    /// Rows of the backing relation the run scanned.
    pub rows_scanned: u64,
    /// Resident bytes of the producing window (0 offline).
    pub resident_bytes: u64,
    /// Ranked predicates returned.
    pub predicates: u64,
    /// HTTP-style status (200 = success, even off the wire).
    pub status: u16,
    /// Total handling latency in microseconds.
    pub total_us: u64,
}

impl TelemetryEvent {
    /// An empty event: every dimension `"-"`, every measure 0. Fill in
    /// what the path knows.
    pub fn blank(trace_id: u64, endpoint: &str) -> TelemetryEvent {
        TelemetryEvent {
            trace_id,
            endpoint: endpoint.to_owned(),
            table: "-".to_owned(),
            generation: 0,
            algorithm: "-".to_owned(),
            aggregate: "-".to_owned(),
            plan_cache: CacheHit::Off,
            influence_cache: CacheHit::Off,
            mask_cache: CacheHit::Off,
            queue_wait_us: 0,
            phases_us: Vec::new(),
            rows_scanned: 0,
            resident_bytes: 0,
            predicates: 0,
            status: 0,
            total_us: 0,
        }
    }

    /// The top `k` phases by elapsed time, descending.
    pub fn top_phases(&self, k: usize) -> Vec<(&'static str, u64)> {
        let mut phases = self.phases_us.clone();
        phases.sort_by_key(|p| std::cmp::Reverse(p.1));
        phases.truncate(k);
        phases
    }
}

struct Ring {
    slots: Vec<Mutex<Option<TelemetryEvent>>>,
    /// Total events ever recorded; claims slots modulo capacity.
    next: AtomicU64,
}

/// The process-wide flight recorder, reached via [`telemetry`].
pub struct Telemetry {
    enabled: AtomicBool,
    ring: OnceLock<Ring>,
}

static TELEMETRY: Telemetry = Telemetry { enabled: AtomicBool::new(false), ring: OnceLock::new() };

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// The process-wide flight recorder.
pub fn telemetry() -> &'static Telemetry {
    &TELEMETRY
}

/// Issues the next process-wide trace id (unique per process lifetime,
/// starting at 1). The server, the CLI, and continuous sessions all
/// draw from this one sequence, so a slide event and an HTTP response
/// header are correlatable by id.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

impl Telemetry {
    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on with the default ring capacity (idempotent).
    pub fn enable(&self) {
        self.enable_with_capacity(DEFAULT_TELEMETRY_EVENTS);
    }

    /// Turns recording on; the *first* enable fixes the ring capacity
    /// (at least 1) for the process lifetime.
    pub fn enable_with_capacity(&self, capacity: usize) {
        self.ring.get_or_init(|| Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        });
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Already-recorded events stay readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Ring capacity in events (0 before the first enable).
    pub fn capacity(&self) -> usize {
        self.ring.get().map(|r| r.slots.len()).unwrap_or(0)
    }

    /// Total events recorded since the first enable (not bounded by the
    /// ring: old events are overwritten, the count keeps climbing).
    pub fn recorded(&self) -> u64 {
        self.ring.get().map(|r| r.next.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records one event. One relaxed atomic load and an immediate
    /// return while disabled; enabled, one `fetch_add` claims a slot
    /// and the event is stored under that slot's uncontended lock.
    #[inline]
    pub fn record(&self, event: TelemetryEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let Some(ring) = self.ring.get() else { return };
        let idx = ring.next.fetch_add(1, Ordering::Relaxed) as usize % ring.slots.len();
        *ring.slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(event);
    }

    /// A copy of the resident events, oldest first. Length is
    /// `min(recorded, capacity)` once concurrent writers quiesce.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        let Some(ring) = self.ring.get() else { return Vec::new() };
        let cap = ring.slots.len() as u64;
        let total = ring.next.load(Ordering::Relaxed);
        let start = total.saturating_sub(cap);
        (start..total)
            .filter_map(|i| {
                ring.slots[(i % cap) as usize].lock().unwrap_or_else(|e| e.into_inner()).clone()
            })
            .collect()
    }

    /// Empties the ring and resets the recorded count. Intended for
    /// tests sharing the process-wide recorder; racing concurrent
    /// writers may leave a freshly recorded event behind.
    pub fn clear(&self) {
        let Some(ring) = self.ring.get() else { return };
        for slot in &ring.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        ring.next.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is a process-global shared by every test in this
    // binary: serialize and clear around each use.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_clean_ring(f: impl FnOnce()) {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        telemetry().enable();
        telemetry().clear();
        f();
        telemetry().disable();
        telemetry().clear();
    }

    fn ev(id: u64) -> TelemetryEvent {
        let mut e = TelemetryEvent::blank(id, "test");
        e.total_us = id * 10;
        e
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        telemetry().enable();
        telemetry().clear();
        telemetry().disable();
        let before = telemetry().recorded();
        telemetry().record(ev(1));
        assert_eq!(telemetry().recorded(), before);
        assert!(telemetry().snapshot().is_empty());
        telemetry().clear();
    }

    #[test]
    fn snapshot_is_oldest_first_and_bounded() {
        with_clean_ring(|| {
            let cap = telemetry().capacity();
            assert!(cap >= 1);
            let n = (cap as u64) + 7;
            for i in 0..n {
                telemetry().record(ev(i));
            }
            assert_eq!(telemetry().recorded(), n);
            let snap = telemetry().snapshot();
            assert_eq!(snap.len(), cap, "ring must not exceed its bound");
            // The survivors are the newest `cap` events, oldest first.
            assert_eq!(snap.first().unwrap().trace_id, n - cap as u64);
            assert_eq!(snap.last().unwrap().trace_id, n - 1);
        });
    }

    /// Law: under concurrent writers the ring never exceeds its bound,
    /// and the recorded count equals the writes issued. Readers snapshot
    /// mid-storm and must always observe `len <= capacity`.
    #[test]
    fn concurrent_writers_never_exceed_the_bound() {
        with_clean_ring(|| {
            let cap = telemetry().capacity();
            const WRITERS: u64 = 8;
            let per_writer = (cap as u64 / 2).max(64);
            std::thread::scope(|s| {
                for w in 0..WRITERS {
                    s.spawn(move || {
                        for i in 0..per_writer {
                            telemetry().record(ev(w * per_writer + i));
                        }
                    });
                }
                // A racing reader: every mid-storm snapshot is bounded.
                s.spawn(|| {
                    for _ in 0..50 {
                        assert!(telemetry().snapshot().len() <= telemetry().capacity());
                    }
                });
            });
            assert_eq!(telemetry().recorded(), WRITERS * per_writer);
            let snap = telemetry().snapshot();
            assert_eq!(snap.len(), (WRITERS * per_writer).min(cap as u64) as usize);
        });
    }

    #[test]
    fn top_phases_ranks_by_elapsed() {
        let mut e = TelemetryEvent::blank(1, "x");
        e.phases_us = vec![("a", 5), ("b", 50), ("c", 20)];
        assert_eq!(e.top_phases(2), vec![("b", 50), ("c", 20)]);
    }
}

//! Flight-recorder ring laws under concurrency.
//!
//! This lives in its own integration-test binary (own process) because
//! the telemetry ring is process-global state.

use scorpion_obs::{telemetry, TelemetryEvent};

/// Capacity is fixed by the first enable in this process.
const CAP: usize = 256;

#[test]
fn ring_never_exceeds_bound_under_concurrent_writers() {
    telemetry().enable_with_capacity(CAP);
    assert_eq!(telemetry().capacity(), CAP);

    const WRITERS: usize = 8;
    const PER_WRITER: usize = 2_000;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let mut e = TelemetryEvent::blank((w * PER_WRITER + i) as u64, "stress");
                    e.total_us = i as u64;
                    telemetry().record(e);
                }
            });
        }
    });

    assert_eq!(telemetry().recorded(), (WRITERS * PER_WRITER) as u64);
    let snap = telemetry().snapshot();
    assert_eq!(snap.len(), CAP, "post-wrap snapshot is exactly the ring bound");

    // Quiescent now: every resident event must be one that was written,
    // and recording more keeps the bound.
    for e in &snap {
        assert_eq!(e.endpoint, "stress");
    }
    for i in 0..CAP * 2 {
        telemetry().record(TelemetryEvent::blank(i as u64, "again"));
    }
    assert_eq!(telemetry().snapshot().len(), CAP);
}

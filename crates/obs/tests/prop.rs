//! Property tests for the log-scale histogram: bucket containment,
//! quantile relative-error bound, and merge/record equivalence.

use proptest::prelude::*;
use scorpion_obs::{bucket_bounds, bucket_index, Histogram};

proptest! {
    /// Every recorded value falls inside its reported bucket's bounds.
    #[test]
    fn value_falls_in_reported_bucket(v in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
    }

    /// A reported quantile never undershoots the exact order statistic
    /// and overshoots it by at most one bucket width — a 1/16 relative
    /// error (plus 1 for the unit buckets).
    #[test]
    fn quantile_within_bucket_error(
        values in prop::collection::vec(0u64..1 << 48, 1..300),
        q in 0.01f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[target - 1];
        let got = h.snapshot().quantile(q);
        prop_assert!(got >= exact, "quantile({q}) = {got} < exact {exact}");
        let bound = exact as f64 * (1.0 + 1.0 / 16.0) + 1.0;
        prop_assert!((got as f64) <= bound, "quantile({q}) = {got} > bound {bound}");
    }

    /// Merging two snapshots is identical to recording both sample
    /// streams into a single histogram.
    #[test]
    fn merge_equals_recording_into_one(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}

//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range / tuple / `prop::collection::vec` / [`any`] strategies, and the
//! `prop_assert*` macros. Sampling is uniform and deterministic — each
//! test derives its RNG stream from the test name and case index — and
//! there is **no shrinking**: a failing case panics with the standard
//! assert message. That trades minimal counterexamples for zero
//! dependencies, which is the right trade in an offline build.

#![warn(missing_docs)]

use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test random source (SplitMix64).
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seeds the runner from the test name; every case re-seeds with
    /// [`TestRunner::begin_case`] so cases are independent of how many
    /// samples earlier cases drew.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { state: h }
    }

    /// Re-seeds deterministically for case number `case`.
    pub fn begin_case(&mut self, base: u64, case: u32) {
        self.state = base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
    }

    /// The seed derived from the test name (pass back to `begin_case`).
    pub fn base_seed(&self) -> u64 {
        self.state
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * runner.f64_unit()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (runner.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Strategy for arbitrary values of a primitive type (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any { _marker: std::marker::PhantomData }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, runner: &mut TestRunner) -> u64 {
        runner.next_u64()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        // Finite, sign-balanced, magnitude-spread values.
        let m = runner.f64_unit() * 2.0 - 1.0;
        let e = runner.usize_in(0, 40) as i32 - 20;
        m * 2f64.powi(e)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRunner};
        use std::ops::Range;

        /// Strategy producing `Vec`s with a size drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let n = runner.usize_in(self.size.start, self.size.end);
                (0..n).map(|_| self.element.sample(runner)).collect()
            }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{any, prop, ProptestConfig, Strategy, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(stringify!($name));
            let base = runner.base_seed();
            for case in 0..config.cases {
                runner.begin_case(base, case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut runner);)*
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges produce in-bound values.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 3usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        /// Vec strategies honour the size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// Tuple strategies sample componentwise.
        #[test]
        fn tuples(t in (0.0f64..1.0, 10usize..20, any::<bool>())) {
            prop_assert!((0.0..1.0).contains(&t.0));
            prop_assert!((10..20).contains(&t.1));
            let _: bool = t.2;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRunner::new("t");
        let mut b = TestRunner::new("t");
        let base_a = a.base_seed();
        let base_b = b.base_seed();
        a.begin_case(base_a, 3);
        b.begin_case(base_b, 3);
        let s = 0.0f64..1.0;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}

//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the small API subset the Scorpion crates use: a seedable
//! [`rngs::StdRng`] and [`Rng::random_range`] over primitive ranges.
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha12, so streams differ from real `rand`, but every
//! consumer in this workspace only requires determinism given a seed.

#![warn(missing_docs)]

use std::ops::Range;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range. Supports the primitive range types
    /// used in this workspace (`Range<f64>`, `Range<usize>`, ...).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo sampling: bias is < 2^-32 for every span used in
                // this workspace (all far below u32::MAX).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<f64> = (0..32).map(|_| a.random_range(0.0..1.0)).collect();
        let xb: Vec<f64> = (0..32).map(|_| b.random_range(0.0..1.0)).collect();
        let xc: Vec<f64> = (0..32).map(|_| c.random_range(0.0..1.0)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = r.random_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&f));
            let i = r.random_range(5usize..17);
            assert!((5..17).contains(&i));
        }
    }

    #[test]
    fn f64_covers_the_range() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| r.random_range(0.0..1.0)).collect();
        assert!(xs.iter().any(|&x| x < 0.1));
        assert!(xs.iter().any(|&x| x > 0.9));
    }
}

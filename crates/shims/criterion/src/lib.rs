//! Offline shim for the `criterion` benchmark harness.
//!
//! Implements the API subset the `scorpion-bench` benches use —
//! benchmark groups, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! sample/measurement knobs, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock timing loop.
//! No statistical analysis, plots, or baselines: each benchmark prints
//! `group/function/param  time: [min mean max]` from its collected
//! samples. Good enough to compare variants (e.g. warm vs cold caches)
//! in an environment without crates.io access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id.to_string(), f);
        g.finish();
        self
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded; reported as elements or bytes per
/// second alongside the timing line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for source
/// compatibility; the shim times one batch per sample regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let full =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        if samples.is_empty() {
            println!("{full:<48} time: [no samples]");
            return;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{full:<48} time: [{} {} {}]{tp}",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
        );
        write_json_record(&full, samples, *min, mean, *max, self.throughput);
    }
}

/// When `BENCH_JSON` names a file, appends one JSON object per
/// benchmark (JSON Lines) so CI can archive machine-readable results
/// alongside the human log. Failures to write are reported but never
/// fail the bench run.
fn write_json_record(
    id: &str,
    samples: &[Duration],
    min: Duration,
    mean: Duration,
    max: Duration,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let elems_per_sec = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!(",\"elements_per_sec\":{:.1}", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    let record = format!(
        "{{\"id\":\"{escaped}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}{elems_per_sec}}}\n",
        samples.len(),
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
    );
    use std::io::Write as _;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = result {
        eprintln!("BENCH_JSON: failed to append to {path}: {e}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Runs and times a benchmark routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: warm-up, then up to `sample_size` timed calls
    /// bounded by the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
        }
        self.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` with per-call inputs built by `setup` **outside**
    /// the timed region — for consuming routines whose input
    /// construction (clones, allocations) must not pollute the
    /// measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up_time;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_until {
                break;
            }
        }
        self.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a function that runs a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1u64, |b, &x| {
            b.iter(|| {
                ran += x;
                black_box(ran)
            });
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_json_appends_records() {
        let path = std::env::temp_dir().join("criterion_shim_bench.jsonl");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("json");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(10));
        g.bench_function("emit \"x\"", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":\"json/emit \\\"x\\\"\""), "{line}");
        assert!(line.contains("\"mean_ns\":"), "{line}");
        assert!(line.contains("\"elements_per_sec\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

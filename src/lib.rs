//! # Scorpion
//!
//! A from-scratch Rust reproduction of **Scorpion: Explaining Away
//! Outliers in Aggregate Queries** (Eugene Wu & Samuel Madden, PVLDB
//! 6(8), VLDB 2013).
//!
//! Given a group-by aggregate query, a set of user-flagged *outlier*
//! results, *hold-out* results that look normal, and error vectors
//! describing how the outliers look wrong, Scorpion searches for the
//! predicate over the input attributes whose deletion best "explains
//! away" the outliers — maximizing the paper's *influence* metric.
//!
//! ## Quickstart
//!
//! ```
//! use scorpion::prelude::*;
//!
//! // Table 1 of the paper: sensor readings.
//! let schema = Schema::new(vec![
//!     Field::disc("time"), Field::disc("sensorid"),
//!     Field::cont("voltage"), Field::cont("temp"),
//! ]).unwrap();
//! let mut b = TableBuilder::new(schema);
//! for (t, s, v, temp) in [
//!     ("11AM", "1", 2.64, 34.0), ("11AM", "2", 2.65, 35.0), ("11AM", "3", 2.63, 35.0),
//!     ("12PM", "1", 2.70, 35.0), ("12PM", "2", 2.70, 35.0), ("12PM", "3", 2.30, 100.0),
//!     ("1PM",  "1", 2.70, 35.0), ("1PM",  "2", 2.70, 35.0), ("1PM",  "3", 2.30, 80.0),
//! ] {
//!     b.push_row(vec![t.into(), s.into(), v.into(), temp.into()]).unwrap();
//! }
//! let table = b.build();
//!
//! // Q1: SELECT avg(temp) FROM sensors GROUP BY time.
//! // The 12PM and 1PM averages look too high; 11AM is normal.
//! let request = Scorpion::on(table)
//!     .sql("SELECT avg(temp) FROM sensors GROUP BY time").unwrap()
//!     .outlier(1, 1.0)
//!     .outlier(2, 1.0)
//!     .holdout(0)
//!     .build().unwrap();
//! let explanation = request.explain().unwrap();
//! let best = explanation.best();
//! // The planted cause: the low-voltage sensor.
//! let table = request.table();
//! let rows: Vec<u32> = (0..table.len() as u32).collect();
//! let selected = best.predicate.select(table, &rows).unwrap();
//! assert!(selected.contains(&5) && selected.contains(&8));
//!
//! // Interactive exploration: prepare once, re-run cheaply per `c`.
//! let session = ScorpionSession::new(request).unwrap();
//! let sharp = session.run_with_c(1.0).unwrap();
//! let broad = session.run_with_c(0.0).unwrap();
//! assert!(sharp.best().influence.is_finite() && broad.best().influence.is_finite());
//! ```
//!
//! ## Crates
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`obs`] | Dependency-free observability: phase timings, log-scale histograms, span recorder, Prometheus text |
//! | [`table`] | Columnar relational substrate, predicates, group-by + provenance |
//! | [`agg`] | Aggregate-property framework (§5) + sketch-tier operators |
//! | [`sketch`] | Probabilistic sketches: retractable quantiles, HLL++, SpaceSaving |
//! | [`core`] | Scorer + influence cache, `Explainer` engines (NAIVE/DT/MC), Merger, builder + sessions (§3–§7) |
//! | [`data`] | SYNTH / INTEL / EXPENSE workload generators + streaming sensor feed (§8.1) |
//! | [`stream`] | Continuous sliding-window engine: mergeable partials, auto-labeling, warm re-explanation |
//! | [`server`] | HTTP explanation service: table registry, plan cache, bounded worker pool |
//! | [`eval`] | Accuracy metrics + per-figure experiment runners (§8) |

#![warn(missing_docs)]

pub use scorpion_agg as agg;
pub use scorpion_core as core;
pub use scorpion_data as data;
pub use scorpion_eval as eval;
pub use scorpion_obs as obs;
pub use scorpion_server as server;
pub use scorpion_sketch as sketch;
pub use scorpion_stream as stream;
pub use scorpion_table as table;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use scorpion_agg::{
        aggregate_by_name, AggState, Aggregate, Avg, Count, CountDistinct, IncrementalAggregate,
        Max, Median, Min, Percentile, SketchAggregate, StdDev, Sum, Variance,
    };
    pub use scorpion_core::features::{rank_attributes, select_attributes};
    pub use scorpion_core::session::ScorpionSession;
    pub use scorpion_core::{
        explain, label_extremes, Algorithm, ApproxConfig, Diagnostics, DtConfig, DtEngine,
        ExplainRequest, Explainer, Explanation, GroupSpec, InfluenceCache, InfluenceParams,
        LabeledQuery, McConfig, McEngine, MergerConfig, NaiveConfig, NaiveEngine, PreparedPlan,
        PreparedQuery, RequestBuilder, ScoredPredicate, Scorer, Scorpion, ScorpionConfig,
        ScorpionError,
    };
    pub use scorpion_sketch::{
        ErrorBound, HyperLogLog, QuantileSketch, SketchPartial, SpaceSaving,
    };
    pub use scorpion_table::{
        aggregate_groups, bin_edges, domains_of, group_by, AttrDomain, AttrType, Clause,
        ClauseMaskCache, Field, Grouping, Predicate, RowMask, Schema, Table, TableBuilder, Value,
    };
}

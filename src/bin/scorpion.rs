//! `scorpion` — command-line outlier explanation over CSV data.
//!
//! The paper's motivation (§2) is putting analyst capabilities in
//! end-user hands; this binary is that flow without writing code:
//!
//! ```text
//! scorpion --csv readings.csv \
//!          --sql "SELECT stddev(temp) FROM readings GROUP BY hour" \
//!          --outliers h040,h041 --holdouts h000,h001 \
//!          --direction high --c 0.5 [--top 5] [--json]
//! ```
//!
//! Without `--outliers`, the most deviant results are auto-labeled.
//!
//! The same flow as a long-lived service (warm plan caches, shared
//! tables, concurrent sessions):
//!
//! ```text
//! scorpion serve --csv readings=readings.csv --port 7070 --workers 8
//! ```

use scorpion::prelude::*;
use scorpion::server::{audit_json, diagnostics_json, explanations_json, num_or_null, Json};
use scorpion::server::{Server, ServerConfig};
use scorpion::stream::{explain_latency, AuditConfig, AuditOutcome};
use std::process::exit;

/// `println!` that tolerates a closed pipe (`scorpion … | head`):
/// truncated output and exit 0 beat a broken-pipe panic.
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

/// `print!` variant of [`out!`].
macro_rules! outp {
    ($($t:tt)*) => {{
        use std::io::Write as _;
        let _ = write!(std::io::stdout(), $($t)*);
    }};
}

struct Args {
    csv: String,
    sql: String,
    outliers: Vec<String>,
    holdouts: Vec<String>,
    direction: f64,
    c: f64,
    lambda: f64,
    top: usize,
    json: bool,
    verbose: bool,
    trace: Option<String>,
    approx: Option<ApproxConfig>,
}

const HELP: &str = "usage: scorpion --csv FILE --sql QUERY [--outliers k1,k2,...] \
[--holdouts k1,k2,...] [--direction high|low] [--c F] [--lambda F] [--top N] [--json] \
[--verbose] [--trace FILE] [--approx] [--approx-rate F] [--approx-confidence F]\n\
       scorpion serve --csv NAME=FILE [--csv ...] [--port P] [--workers N] ...\n\
       scorpion audit --telemetry-csv FILE [--threshold Z] [--top N] [--json]\n\
\n\
QUERY is a select-project-group-by query with one aggregate, e.g.\n\
\"SELECT avg(temp) FROM readings WHERE sensor = 's3' GROUP BY hour\".\n\
Group keys (k1, k2, ...) use the values printed in the result listing;\n\
composite keys join parts with '|'. Without --outliers, the most\n\
deviant results are labeled automatically. --json prints the result\n\
series, explanations, and diagnostics as one JSON object. --verbose\n\
prints a per-phase timing table to stderr (composes with --json).\n\
--trace FILE writes a chrome://tracing span dump of the run.\n\
--approx enables the two-stage approximate influence search: a\n\
deterministic stratified sample prunes dominated candidates before\n\
exact scoring; the reported top predicates stay exactly scored and\n\
diagnostics gain approx_error_bound and candidates_pruned.\n\
--approx-rate F (in (0.0, 1.0], default 0.1) sets the per-group sample\n\
rate; --approx-confidence F (in (0.5, 1.0], default 0.95) the interval\n\
confidence. Either flag implies --approx.\n\
\n\
`scorpion serve` runs the explanation service (see `scorpion serve\n\
--help`). `scorpion audit` runs the engine over its own request\n\
telemetry (a `GET /debug/telemetry?format=csv` dump) and names the\n\
request attributes that explain the latency outliers (see `scorpion\n\
audit --help`). For continuous monitoring over a live feed, see the\n\
scorpion-stream crate and `cargo run --release --example\n\
streaming_monitor`.";

const SERVE_HELP: &str = "usage: scorpion serve [--csv NAME=FILE]... [--port P] [--host H] \
[--workers N] [--queue N] [--plan-cache N] [--influence-cache-entries N] [--access-log] \
[--slow-ms MS] [--telemetry-events N] [--trace-dir DIR] [--deadline-ms MS] \
[--read-timeout-ms MS] [--write-timeout-ms MS] [--idle-timeout-ms MS]\n\
\n\
Serves outlier explanations over HTTP/1.1 JSON:\n\
  POST /explain   {table, sql, outliers|auto_label, holdouts, lambda, c,\n\
                   top, algorithm, approx, approx_rate, approx_confidence}\n\
                  -> ranked predicates + diagnostics\n\
  GET  /tables    registered tables (name, generation, rows)\n\
  POST /tables    {name, csv} -> load/replace a table\n\
  GET  /healthz   liveness\n\
  GET  /stats     plan-cache hits, queue depth, per-endpoint latency\n\
  GET  /metrics   Prometheus text exposition (latency histograms,\n\
                  counters, build info)\n\
  GET  /debug/telemetry   the flight-recorder ring (JSON; ?format=csv\n\
                  is the dump `scorpion audit` reads)\n\
  GET  /debug/slow        the engine explains the service's own latency\n\
                  outliers [?threshold=Z] [?top=N]\n\
\n\
--csv NAME=FILE registers FILE under NAME at startup (bare FILE uses\n\
the file stem). --port 0 picks an ephemeral port; the bound address is\n\
printed on stdout. --workers 0 (default) uses all cores. Repeated\n\
/explain calls for the same query and labels at a new c reuse the\n\
cached prepared plan (the paper's 8.3.3 cache, served warm).\n\
--access-log prints one line per request to stderr (method, path,\n\
status, duration, trace id). --slow-ms MS also logs any request at or\n\
over MS milliseconds with its top-3 phases inline (works without\n\
--access-log). --telemetry-events N sizes the flight-recorder ring\n\
(default 4096; 0 disables it). --trace-dir DIR dumps a chrome://tracing\n\
span file per /explain into DIR.\n\
\n\
Workers handle in-flight requests, not open sockets: idle keep-alive\n\
connections park on a readiness poller at zero worker cost.\n\
--deadline-ms MS caps each /explain's wall clock (0 = off, default);\n\
the x-scorpion-deadline-ms request header overrides it per request.\n\
At the deadline the mc/naive engines answer with their best-so-far\n\
result, HTTP 504, and deadline_exceeded: true (dt is uninterruptible).\n\
--read-timeout-ms MS closes connections stuck mid-request with 408\n\
(default 10000). --write-timeout-ms MS drops peers that stop draining\n\
their response (default 10000). --idle-timeout-ms MS reaps parked\n\
keep-alive connections (default 60000).";

const AUDIT_HELP: &str = "usage: scorpion audit --telemetry-csv FILE [--threshold Z] [--top N] \
[--json]\n\
\n\
Self-explain: runs the Scorpion engine over the service's own request\n\
telemetry. FILE is a flight-recorder dump — save one with\n\
  curl 'http://HOST:PORT/debug/telemetry?format=csv' > telemetry.csv\n\
\n\
The audit groups requests into arrival-order slices, aggregates\n\
avg(latency_ms) per slice, flags slow slices with a median/MAD detector\n\
(--threshold Z, default 3.5), and searches the request dimensions\n\
(endpoint, algorithm, cache hits, ...) for the predicate whose deletion\n\
best explains the spike — e.g. `algorithm in {naive} AND plan_cache in\n\
{miss}`. --json emits the same document shape as GET /debug/slow.";

/// Prints help, tolerating a closed pipe (`scorpion --help | head`):
/// exiting 0 with truncated output beats a broken-pipe panic.
fn help(text: &str) -> ! {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{text}");
    exit(0)
}

fn usage(text: &str) -> ! {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{text}");
    exit(2)
}

fn parse_args(it: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        csv: String::new(),
        sql: String::new(),
        outliers: Vec::new(),
        holdouts: Vec::new(),
        direction: 1.0,
        c: 0.5,
        lambda: 0.5,
        top: 3,
        json: false,
        verbose: false,
        trace: None,
        approx: None,
    };
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage(HELP)
            })
        };
        match flag.as_str() {
            "--csv" => args.csv = val("--csv"),
            "--sql" => args.sql = val("--sql"),
            "--outliers" => {
                args.outliers = val("--outliers").split(',').map(str::to_owned).collect()
            }
            "--holdouts" => {
                args.holdouts = val("--holdouts").split(',').map(str::to_owned).collect()
            }
            "--direction" => {
                args.direction = match val("--direction").as_str() {
                    "high" => 1.0,
                    "low" => -1.0,
                    other => {
                        eprintln!("--direction must be `high` or `low`, got `{other}`");
                        usage(HELP)
                    }
                }
            }
            "--c" => args.c = val("--c").parse().unwrap_or_else(|_| usage(HELP)),
            "--lambda" => args.lambda = val("--lambda").parse().unwrap_or_else(|_| usage(HELP)),
            "--top" => args.top = val("--top").parse().unwrap_or_else(|_| usage(HELP)),
            "--json" => args.json = true,
            "--verbose" => args.verbose = true,
            "--trace" => args.trace = Some(val("--trace")),
            "--approx" => {
                args.approx.get_or_insert_with(ApproxConfig::default);
            }
            "--approx-rate" => {
                // Unparseable values become NaN, which validate()
                // rejects below with the range-naming message.
                let rate = val("--approx-rate").parse().unwrap_or(f64::NAN);
                args.approx.get_or_insert_with(ApproxConfig::default).sample_rate = rate;
            }
            "--approx-confidence" => {
                let conf = val("--approx-confidence").parse().unwrap_or(f64::NAN);
                args.approx.get_or_insert_with(ApproxConfig::default).confidence = conf;
            }
            "--help" | "-h" => help(HELP),
            other => {
                eprintln!("unknown flag `{other}`");
                usage(HELP)
            }
        }
    }
    if args.csv.is_empty() || args.sql.is_empty() {
        usage(HELP);
    }
    if let Some(a) = &args.approx {
        if let Err(msg) = a.validate() {
            eprintln!("{msg}");
            exit(2);
        }
    }
    args
}

struct ServeArgs {
    tables: Vec<(String, String)>,
    config: ServerConfig,
}

fn parse_serve_args(it: impl Iterator<Item = String>) -> ServeArgs {
    let mut args = ServeArgs { tables: Vec::new(), config: ServerConfig::default() };
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage(SERVE_HELP)
            })
        };
        let num = |name: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value for {name}: `{v}`");
                usage(SERVE_HELP)
            })
        };
        match flag.as_str() {
            "--csv" => {
                let spec = val("--csv");
                let (name, path) = match spec.split_once('=') {
                    Some((n, p)) => (n.to_owned(), p.to_owned()),
                    None => {
                        let stem = std::path::Path::new(&spec)
                            .file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                            .unwrap_or_else(|| spec.clone());
                        (stem, spec)
                    }
                };
                args.tables.push((name, path));
            }
            "--port" => {
                // Parse as u16 directly so out-of-range ports error
                // instead of silently wrapping.
                let v = val("--port");
                args.config.port = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad port `{v}` (expected 0-65535)");
                    usage(SERVE_HELP)
                })
            }
            "--host" => args.config.host = val("--host"),
            "--workers" => args.config.workers = num("--workers", val("--workers")),
            "--queue" => args.config.queue_depth = num("--queue", val("--queue")),
            "--plan-cache" => {
                args.config.plan_cache_entries = num("--plan-cache", val("--plan-cache"))
            }
            "--influence-cache-entries" => {
                args.config.influence_cache_entries =
                    num("--influence-cache-entries", val("--influence-cache-entries"))
            }
            "--access-log" => args.config.access_log = true,
            "--slow-ms" => args.config.slow_ms = Some(num("--slow-ms", val("--slow-ms")) as u64),
            "--telemetry-events" => {
                args.config.telemetry_events = num("--telemetry-events", val("--telemetry-events"))
            }
            "--trace-dir" => {
                args.config.trace_dir = Some(std::path::PathBuf::from(val("--trace-dir")))
            }
            "--deadline-ms" => {
                args.config.deadline_ms = num("--deadline-ms", val("--deadline-ms")) as u64
            }
            "--read-timeout-ms" => {
                args.config.read_timeout_ms =
                    num("--read-timeout-ms", val("--read-timeout-ms")) as u64
            }
            "--write-timeout-ms" => {
                args.config.write_timeout_ms =
                    num("--write-timeout-ms", val("--write-timeout-ms")) as u64
            }
            "--idle-timeout-ms" => {
                args.config.idle_timeout_ms =
                    num("--idle-timeout-ms", val("--idle-timeout-ms")) as u64
            }
            "--help" | "-h" => help(SERVE_HELP),
            other => {
                eprintln!("unknown flag `{other}`");
                usage(SERVE_HELP)
            }
        }
    }
    args
}

fn serve_main(it: impl Iterator<Item = String>) -> ! {
    let args = parse_serve_args(it);
    let server = match Server::bind(&args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}:{}: {e}", args.config.host, args.config.port);
            exit(1)
        }
    };
    let state = server.state();
    for (name, path) in &args.tables {
        match scorpion::table::csv::load_csv(std::path::Path::new(path)) {
            Ok(t) => {
                let rows = t.len();
                let generation = state.registry.insert(name.clone(), t);
                eprintln!("loaded `{name}` from {path}: {rows} rows (generation {generation})");
            }
            Err(e) => {
                eprintln!("failed to load {path}: {e}");
                exit(1)
            }
        }
    }
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("failed to read bound address: {e}");
            exit(1)
        }
    };
    {
        // Announce the bound address on stdout (scripts parse this —
        // notably with --port 0) and tolerate a closed pipe.
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(
            out,
            "scorpion-server listening on http://{addr} ({} tables)",
            state.registry.len()
        );
        let _ = out.flush();
    }
    match server.run() {
        Ok(()) => exit(0),
        Err(e) => {
            eprintln!("server error: {e}");
            exit(1)
        }
    }
}

struct AuditArgs {
    csv: String,
    threshold: f64,
    top: usize,
    json: bool,
}

fn parse_audit_args(it: impl Iterator<Item = String>) -> AuditArgs {
    let mut args = AuditArgs { csv: String::new(), threshold: 3.5, top: 3, json: false };
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage(AUDIT_HELP)
            })
        };
        match flag.as_str() {
            "--telemetry-csv" => args.csv = val("--telemetry-csv"),
            "--threshold" => {
                let v = val("--threshold");
                args.threshold = v.parse().ok().filter(|z: &f64| *z > 0.0).unwrap_or_else(|| {
                    eprintln!("bad --threshold `{v}` (expected a positive number)");
                    usage(AUDIT_HELP)
                })
            }
            "--top" => args.top = val("--top").parse().unwrap_or_else(|_| usage(AUDIT_HELP)),
            "--json" => args.json = true,
            "--help" | "-h" => help(AUDIT_HELP),
            other => {
                eprintln!("unknown flag `{other}`");
                usage(AUDIT_HELP)
            }
        }
    }
    if args.csv.is_empty() {
        usage(AUDIT_HELP);
    }
    args
}

/// `scorpion audit`: the self-explain pipeline over an offline
/// flight-recorder dump — the same [`explain_latency`] call behind
/// `GET /debug/slow`, pointed at a CSV instead of the live ring.
fn audit_main(it: impl Iterator<Item = String>) -> ! {
    let args = parse_audit_args(it);
    let text = match std::fs::read_to_string(&args.csv) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.csv);
            exit(1)
        }
    };
    let table = match scorpion::core::telemetry_table_from_csv(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry CSV rejected: {e}");
            exit(1)
        }
    };
    let cfg = AuditConfig { threshold: args.threshold, ..AuditConfig::default() };
    let audit = match explain_latency(&table, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("audit failed: {e}");
            exit(1)
        }
    };

    if args.json {
        match audit_json(&audit, cfg.min_events, args.top).encode() {
            Ok(text) => out!("{text}"),
            Err(e) => {
                eprintln!("JSON encoding failed: {e}");
                exit(1)
            }
        }
        exit(0)
    }

    out!("audited {} request events (threshold {})", audit.events, audit.threshold);
    match &audit.outcome {
        AuditOutcome::TooFewEvents => {
            out!("too few events for a verdict (need at least {})", cfg.min_events);
        }
        AuditOutcome::NoOutliers { center_ms, scale_ms } => {
            out!(
                "latency is uniform: center {center_ms:.2}ms, scale {scale_ms:.2}ms — \
                 no slow slices"
            );
        }
        AuditOutcome::Explained(report) => {
            out!("slow slices (center {:.2}ms, scale {:.2}ms):", report.center_ms, report.scale_ms);
            for (key, ms) in &report.slow {
                out!("  {key:<8} avg {ms:.2}ms");
            }
            out!("\nwhat explains the slow slices:");
            outp!("{}", report.explanation.render(&report.table, args.top));
        }
    }
    exit(0)
}

/// Prints the per-phase timing table from [`Diagnostics::phases`] to
/// stderr (so it composes with `--json` on stdout). Phases nest —
/// `prepare` contains `dt.*`, `run.score` contains `scorer.*` — so the
/// totals row is a sum of attributed time, not wall time.
fn phase_table(d: &Diagnostics) {
    use std::io::Write as _;
    let stderr = std::io::stderr();
    let mut w = stderr.lock();
    if d.phases.is_empty() {
        let _ = writeln!(w, "\nno phase timings attributed");
        return;
    }
    let name_w = d.phases.iter().map(|p| p.name.len()).max().unwrap_or(5).max("TOTAL".len());
    let _ = writeln!(w, "\n{:<name_w$}  {:>10}  {:>8}", "phase", "ms", "count");
    let mut total_ms = 0.0;
    let mut total_count = 0u64;
    for p in &d.phases {
        let _ = writeln!(w, "{:<name_w$}  {:>10.3}  {:>8}", p.name, p.millis(), p.count);
        total_ms += p.millis();
        total_count += p.count;
    }
    let _ = writeln!(w, "{:<name_w$}  {:>10.3}  {:>8}", "TOTAL", total_ms, total_count);
    let _ = writeln!(
        w,
        "(phases nest; attributed total can exceed the {:.3}ms wall time)",
        d.runtime.as_secs_f64() * 1000.0
    );
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        serve_main(argv);
    }
    if argv.peek().map(String::as_str) == Some("audit") {
        argv.next();
        audit_main(argv);
    }
    let args = parse_args(argv);
    let table = match scorpion::table::csv::load_csv(std::path::Path::new(&args.csv)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args.csv);
            exit(1)
        }
    };
    let builder = match Scorpion::on(table).sql(&args.sql) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("query failed: {e}");
            exit(1)
        }
    };

    if !args.json {
        out!("{}", args.sql.trim());
        for (i, v) in builder.results().iter().enumerate() {
            out!("  {:<16} {v:.3}", builder.display_key(i));
        }
    }

    let builder = if args.outliers.is_empty() {
        let builder = builder.auto_label(2);
        if !args.json {
            out!(
                "\nauto-labeled outliers: {}",
                builder
                    .outlier_labels()
                    .iter()
                    .map(|&(i, _)| builder.display_key(i))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        builder
    } else {
        let key_index = |b: &RequestBuilder, k: &str| {
            b.index_of_key(k).unwrap_or_else(|| {
                eprintln!("unknown result key `{k}`");
                exit(1)
            })
        };
        let mut o = Vec::new();
        for k in &args.outliers {
            o.push((key_index(&builder, k), args.direction));
        }
        let mut h = Vec::new();
        for k in &args.holdouts {
            h.push(key_index(&builder, k));
        }
        builder.outliers(o).holdouts(h)
    };

    // Kept for the JSON rendering of the result series.
    let results = builder.results().to_vec();
    let display_keys: Vec<String> = (0..builder.len()).map(|i| builder.display_key(i)).collect();

    let mut builder = builder.params(args.lambda, args.c);
    if let Some(a) = args.approx {
        builder = builder.approx(a);
    }
    let request = match builder.build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("labeling failed: {e}");
            exit(1)
        }
    };
    if args.trace.is_some() {
        scorpion::obs::recorder().enable();
    }
    // Draw from the same process-wide trace-id sequence as the server
    // and the stream sessions, so this run's diagnostics correlate.
    let trace_id = scorpion::obs::next_trace_id();
    let mut ex = match request.explain() {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("explanation failed: {e}");
            exit(1)
        }
    };
    ex.diagnostics.trace_id = trace_id;
    if scorpion::obs::telemetry().enabled() {
        let mut event = scorpion::obs::TelemetryEvent::blank(trace_id, "cli.explain");
        event.table = std::path::Path::new(&args.csv)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| args.csv.clone());
        event.aggregate = request.aggregate().name().to_owned();
        event.rows_scanned = request.table().len() as u64;
        event.predicates = ex.predicates.len() as u64;
        event.status = 200;
        event.total_us = ex.diagnostics.runtime.as_micros() as u64;
        scorpion::obs::telemetry()
            .record(scorpion::core::apply_diagnostics(event, &ex.diagnostics));
    }
    if let Some(path) = &args.trace {
        let spans = scorpion::obs::recorder().drain();
        match scorpion::obs::write_chrome_trace(std::path::Path::new(path), &spans) {
            Ok(()) => eprintln!("wrote {} spans to {path} (open in chrome://tracing)", spans.len()),
            Err(e) => {
                eprintln!("failed to write trace {path}: {e}");
                exit(1)
            }
        }
    }
    if args.verbose {
        phase_table(&ex.diagnostics);
    }

    if args.json {
        let series: Vec<Json> = display_keys
            .iter()
            .zip(&results)
            .map(|(k, &v)| Json::obj([("key", Json::from(k.as_str())), ("value", num_or_null(v))]))
            .collect();
        let doc = Json::obj([
            ("sql", Json::from(args.sql.trim())),
            ("results", Json::Arr(series)),
            ("algorithm", Json::from(ex.diagnostics.algorithm)),
            ("explanations", explanations_json(request.table(), &ex.predicates, args.top)),
            ("diagnostics", diagnostics_json(&ex.diagnostics)),
        ]);
        match doc.encode() {
            Ok(text) => {
                use std::io::Write as _;
                let _ = writeln!(std::io::stdout(), "{text}");
            }
            Err(e) => {
                eprintln!("JSON encoding failed: {e}");
                exit(1)
            }
        }
        return;
    }

    out!(
        "\nexplanations [{}; {} scorer calls; {:.2}s]:",
        ex.diagnostics.algorithm,
        ex.diagnostics.scorer_calls,
        ex.diagnostics.runtime.as_secs_f64()
    );
    outp!("{}", ex.render(request.table(), args.top));

    let preview = ex
        .preview(
            request.table(),
            request.grouping(),
            request.aggregate().as_ref(),
            request.agg_attr(),
        )
        .expect("preview");
    out!("\nresult series with the top explanation deleted:");
    for (i, (before, after)) in preview.iter().enumerate() {
        let marker = if (before - after).abs() > 1e-9 { "  *" } else { "" };
        out!(
            "  {:<16} {before:.3} -> {after:.3}{marker}",
            request.grouping().display_key(request.table(), i)
        );
    }
}

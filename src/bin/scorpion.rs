//! `scorpion` — command-line outlier explanation over CSV data.
//!
//! The paper's motivation (§2) is putting analyst capabilities in
//! end-user hands; this binary is that flow without writing code:
//!
//! ```text
//! scorpion --csv readings.csv \
//!          --sql "SELECT stddev(temp) FROM readings GROUP BY hour" \
//!          --outliers h040,h041 --holdouts h000,h001 \
//!          --direction high --c 0.5 [--top 5]
//! ```
//!
//! Without `--outliers`, the most deviant results are auto-labeled.

use scorpion::prelude::*;
use std::process::exit;

struct Args {
    csv: String,
    sql: String,
    outliers: Vec<String>,
    holdouts: Vec<String>,
    direction: f64,
    c: f64,
    lambda: f64,
    top: usize,
}

const HELP: &str = "usage: scorpion --csv FILE --sql QUERY [--outliers k1,k2,...] \
[--holdouts k1,k2,...] [--direction high|low] [--c F] [--lambda F] [--top N]\n\
\n\
QUERY is a select-project-group-by query with one aggregate, e.g.\n\
\"SELECT avg(temp) FROM readings WHERE sensor = 's3' GROUP BY hour\".\n\
Group keys (k1, k2, ...) use the values printed in the result listing;\n\
composite keys join parts with '|'. Without --outliers, the most\n\
deviant results are labeled automatically.\n\
\n\
For continuous monitoring over a live feed, see the scorpion-stream\n\
crate and `cargo run --release --example streaming_monitor`.";

fn help() -> ! {
    // Tolerate a closed pipe (`scorpion --help | head`): exiting 0 with
    // truncated output beats a broken-pipe panic.
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{HELP}");
    exit(0)
}

fn usage() -> ! {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{HELP}");
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: String::new(),
        sql: String::new(),
        outliers: Vec::new(),
        holdouts: Vec::new(),
        direction: 1.0,
        c: 0.5,
        lambda: 0.5,
        top: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--csv" => args.csv = val("--csv"),
            "--sql" => args.sql = val("--sql"),
            "--outliers" => {
                args.outliers = val("--outliers").split(',').map(str::to_owned).collect()
            }
            "--holdouts" => {
                args.holdouts = val("--holdouts").split(',').map(str::to_owned).collect()
            }
            "--direction" => {
                args.direction = match val("--direction").as_str() {
                    "high" => 1.0,
                    "low" => -1.0,
                    other => {
                        eprintln!("--direction must be `high` or `low`, got `{other}`");
                        usage()
                    }
                }
            }
            "--c" => args.c = val("--c").parse().unwrap_or_else(|_| usage()),
            "--lambda" => args.lambda = val("--lambda").parse().unwrap_or_else(|_| usage()),
            "--top" => args.top = val("--top").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => help(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    if args.csv.is_empty() || args.sql.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let table = match scorpion::table::csv::load_csv(std::path::Path::new(&args.csv)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args.csv);
            exit(1)
        }
    };
    let builder = match Scorpion::on(table).sql(&args.sql) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("query failed: {e}");
            exit(1)
        }
    };

    println!("{}", args.sql.trim());
    for (i, v) in builder.results().iter().enumerate() {
        println!("  {:<16} {v:.3}", builder.display_key(i));
    }

    let builder = if args.outliers.is_empty() {
        let builder = builder.auto_label(2);
        println!(
            "\nauto-labeled outliers: {}",
            builder
                .outlier_labels()
                .iter()
                .map(|&(i, _)| builder.display_key(i))
                .collect::<Vec<_>>()
                .join(", ")
        );
        builder
    } else {
        let key_index = |b: &RequestBuilder, k: &str| {
            b.index_of_key(k).unwrap_or_else(|| {
                eprintln!("unknown result key `{k}`");
                exit(1)
            })
        };
        let mut o = Vec::new();
        for k in &args.outliers {
            o.push((key_index(&builder, k), args.direction));
        }
        let mut h = Vec::new();
        for k in &args.holdouts {
            h.push(key_index(&builder, k));
        }
        builder.outliers(o).holdouts(h)
    };

    let request = match builder.params(args.lambda, args.c).build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("labeling failed: {e}");
            exit(1)
        }
    };
    let ex = match request.explain() {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("explanation failed: {e}");
            exit(1)
        }
    };

    println!(
        "\nexplanations [{}; {} scorer calls; {:.2}s]:",
        ex.diagnostics.algorithm,
        ex.diagnostics.scorer_calls,
        ex.diagnostics.runtime.as_secs_f64()
    );
    print!("{}", ex.render(request.table(), args.top));

    let preview = ex
        .preview(
            request.table(),
            request.grouping(),
            request.aggregate().as_ref(),
            request.agg_attr(),
        )
        .expect("preview");
    println!("\nresult series with the top explanation deleted:");
    for (i, (before, after)) in preview.iter().enumerate() {
        let marker = if (before - after).abs() > 1e-9 { "  *" } else { "" };
        println!(
            "  {:<16} {before:.3} -> {after:.3}{marker}",
            request.grouping().display_key(request.table(), i)
        );
    }
}
